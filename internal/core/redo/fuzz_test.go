package redo

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// FuzzCrashPoint fuzzes the power-failure instant (and the variant) during
// a deterministic insert workload, asserting durable linearizability after
// recovery. go test runs the seed corpus; `go test -fuzz=FuzzCrashPoint`
// explores further.
func FuzzCrashPoint(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(17), uint8(1))
	f.Add(int64(93), uint8(2))
	f.Add(int64(400), uint8(2))
	f.Fuzz(func(t *testing.T, failPoint int64, variantByte uint8) {
		if failPoint < 1 || failPoint > 20000 {
			return
		}
		variant := Variant(variantByte % 3)
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 13, Regions: 2})
		s := seqds.ListSet{RootSlot: 0}
		const n = 12
		completed := 0
		func() {
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrSimulatedPowerFailure {
					panic(r)
				}
				pool.InjectFailure(-1)
			}()
			e := New(pool, Config{Threads: 1, Variant: variant})
			e.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
			pool.InjectFailure(failPoint)
			for k := 0; k < n; k++ {
				e.Update(0, func(m ptm.Mem) uint64 {
					s.Add(m, uint64(k)+1)
					return 0
				})
				completed++
			}
		}()
		pool.Crash(pmem.CrashConservative, nil)
		e := New(pool, Config{Threads: 1, Variant: variant})
		keys := seqds.ReadSlice(e, 0, s.Keys)
		if len(keys) < completed || len(keys) > n {
			t.Fatalf("fail=%d variant=%v: recovered %d keys, completed %d",
				failPoint, variant, len(keys), completed)
		}
		for i, k := range keys {
			if k != uint64(i)+1 {
				t.Fatalf("fail=%d: recovered state not a prefix", failPoint)
			}
		}
	})
}
