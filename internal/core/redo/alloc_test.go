package redo

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// TestTryReadAllocFree pins the optimistic read path at zero heap
// allocations: with a pre-bound closure, TryRead reuses the per-thread
// cached read-only view instead of boxing a fresh one per call.
func TestTryReadAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the measured paths")
	}
	pool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: 1 << 13, Regions: 2})
	e := New(pool, Config{Threads: 1, Variant: Opt})
	addr := ptm.RootAddr(0)
	e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 42); return 0 })
	fn := func(m ptm.Mem) uint64 { return m.Load(addr) }
	misses := 0
	if a := testing.AllocsPerRun(500, func() {
		res, ok := e.TryRead(0, fn)
		if !ok {
			misses++
			return
		}
		if res != 42 {
			t.Fatalf("TryRead = %d, want 42", res)
		}
	}); a != 0 {
		t.Errorf("TryRead: %.1f allocs/op, want 0", a)
	}
	if misses > 0 {
		t.Errorf("uncontended TryRead missed %d times", misses)
	}
}
