package redo

import (
	"runtime"

	"repro/internal/obs"
	"repro/internal/ptm"
)

// The engine exposes its epoch machinery through the optional
// buffered-durability PTM interface.
var _ ptm.Syncer = (*Redo)(nil)

// Buffered durability (group commit): the persister-side half of the
// relaxed-durability mode selected by Config.Buffered.
//
// In buffered mode, update transactions commit into the in-flight epoch in
// DRAM-side commit order (the curComb sequence) without flushing their
// replica or touching the header. Persist seals the epoch: it pins the
// current consensus replica with a shared lock on the persister's reserved
// slot, coalesces every deferred flush accumulated on it since the replica
// last held a watermark, issues ONE fence for the whole group, and then
// publishes the header naming that replica — the durable-epoch watermark.
//
// The pin is the crux of the crash-safety argument. The replica the durable
// header names must stay byte-identical until the next watermark supersedes
// it: a writer that reacquired and mutated it would leave unflushed dirty
// lines that an adversarial crash can tear, corrupting the only replica
// recovery will adopt. The shared pin makes ExclusiveTryLock fail for every
// writer, so the durable replica is frozen AND has zero unflushed lines —
// under either crash model its recovery image equals what the watermark
// covered. Everything else in the pool is fair game for tearing: recovery
// invalidates all non-adopted replicas, so a crash loses exactly the
// commit-order suffix of epochs after the watermark, never a gap.
//
// Persist is single-caller by contract (redodb serializes it behind a
// mutex); the pinnedIdx bookkeeping and the dirty-list reads rely on it.

// Buffered reports whether the engine runs in buffered-durability mode.
func (e *Redo) Buffered() bool { return e.cfg.Buffered }

// CommittedSeq returns the sequence number of the newest committed (but not
// necessarily durable) transition — the in-flight epoch's tail.
func (e *Redo) CommittedSeq() uint64 { return seqOf(e.curComb.Load()) }

// DurableSeq returns the durable-epoch watermark: every transition with a
// sequence number at or below it survives any crash.
func (e *Redo) DurableSeq() uint64 { return e.persisted.Load() }

// LastSeq returns the commit sequence of thread tid's last completed
// operation: the epoch a Sync on behalf of tid must wait for. Owner-only,
// like every per-thread engine API.
func (e *Redo) LastSeq(tid int) uint64 { return e.lastSeq[tid] }

// Persist seals the in-flight epoch and advances the durable watermark to
// it, returning the new watermark. One fence (plus the header psync) covers
// every transition committed since the previous call. No-op when the
// watermark is already at the consensus tail. Single caller at a time.
func (e *Redo) Persist() uint64 {
	if !e.cfg.Buffered {
		// Synchronous mode persists at every commit; the watermark is
		// always the consensus tail.
		return e.persisted.Load()
	}
	ptid := e.persistTid
	for {
		curC := e.curComb.Load()
		seq := seqOf(curC)
		if seq <= e.persisted.Load() {
			return e.persisted.Load()
		}
		idx := idxOf(curC)
		c := e.combs[idx]
		// The consensus replica is always in the downgraded state (its
		// winner never releases it outright), so the shared pin can only
		// fail if curComb moved on and a writer grabbed this replica —
		// retry on the fresh curComb.
		if !c.lk.SharedTryLock(ptid) {
			runtime.Gosched()
			continue
		}
		if e.curComb.Load() != curC {
			c.lk.SharedUnlock(ptid)
			continue
		}
		// Pinned and validated: c is the consensus replica, frozen for
		// writers from here on. Seal the epoch and group-flush it.
		e.pool.TraceEvent(obs.KindEpochSeal, ptid, idx, 0, 0, seq)
		e.flushReplica(c)
		c.region.PFence()
		if e.pool.Traced() {
			e.pool.TraceEvent(obs.KindPublish, ptid, idx, 0, usedWords(c.region), obs.PubHeap)
		}
		// Advance the watermark: plain header store (the persister is the
		// sole header writer in buffered mode), write-back, psync.
		e.pool.HeaderStore(headerSlot, headerValid|curC)
		e.pool.PWBHeader(headerSlot)
		e.pool.PSync()
		e.pool.TraceEvent(obs.KindHeaderPublish, ptid, -1, headerSlot, 1, 0)
		e.pool.TraceEvent(obs.KindWatermark, ptid, idx, 0, 0, seq)
		// The previous watermark replica may thaw now that the header no
		// longer names it. (A crash between the psync above and this
		// unlock is safe: the new header is already durable.)
		if p := int(e.pinnedIdx.Load()); p >= 0 && p != idx {
			e.combs[p].lk.SharedUnlock(ptid)
		}
		e.pinnedIdx.Store(int32(idx))
		e.persisted.Store(seq)
		return seq
	}
}
