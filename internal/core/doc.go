// Package core groups the paper's primary contributions — the wait-free
// persistent universal constructions:
//
//   - core/cx: CX-PUC (the first bounded wait-free persistent universal
//     construction, §4) and CX-PTM (its transactional-memory refinement
//     with store interposition).
//   - core/redo: Redo-PTM (the new physical-logging construction of §5)
//     with its RedoTimed-PTM and RedoOpt-PTM refinements.
//
// The baselines the paper compares against live outside this package
// (internal/onefile, internal/pmdk, internal/romulus, internal/handmade),
// as do the substrates (internal/pmem, internal/palloc, internal/rwlock,
// internal/uqueue) and the applications (internal/redodb).
package core
