package cx

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

func strictPool(regions int) *pmem.Pool {
	return pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: regions})
}

// runAddsUntilCrash creates an engine over pool and inserts keys 0..n-1 into
// a fresh list set (after Init), one update transaction each, until either
// all complete or an injected power failure fires. It returns the number of
// completed insert transactions and whether a crash occurred. The set is
// initialized before the failure point is armed when armAfterInit is set.
func runAddsUntilCrash(t *testing.T, pool *pmem.Pool, interpose bool, n int, failPoint int64) (completed int, crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if r != pmem.ErrSimulatedPowerFailure {
				panic(r)
			}
			crashed = true
		}
		pool.InjectFailure(-1)
	}()
	e := New(pool, Config{Threads: 1, Interpose: interpose})
	s := seqds.ListSet{RootSlot: 0}
	e.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	pool.InjectFailure(failPoint)
	for k := 0; k < n; k++ {
		e.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, uint64(k)+1)
			return 0
		})
		completed++
	}
	return completed, false
}

// recoverAndCheck recovers an engine from the crashed pool and verifies
// durable linearizability: every completed insert is present, and the
// surviving state is a consistent prefix 1..j with j >= completed.
func recoverAndCheck(t *testing.T, pool *pmem.Pool, interpose bool, completed, n int) {
	t.Helper()
	pool.Crash(pmem.CrashConservative, nil)
	e := New(pool, Config{Threads: 1, Interpose: interpose})
	s := seqds.ListSet{RootSlot: 0}
	keys := seqds.ReadSlice(e, 0, s.Keys)
	if len(keys) < completed {
		t.Fatalf("recovered %d keys, but %d inserts had completed", len(keys), completed)
	}
	if len(keys) > n {
		t.Fatalf("recovered %d keys, more than ever inserted (%d)", len(keys), n)
	}
	for i, k := range keys {
		if k != uint64(i)+1 {
			t.Fatalf("recovered state is not a prefix: keys[%d] = %d", i, k)
		}
	}
	// The recovered engine must be fully usable.
	got := e.Update(0, func(m ptm.Mem) uint64 {
		s.Add(m, 99999)
		return s.Len(m)
	})
	if got != uint64(len(keys))+1 {
		t.Fatalf("post-recovery insert: len = %d, want %d", got, len(keys)+1)
	}
}

func TestCrashAfterQuiesceKeepsEverything(t *testing.T) {
	for name, interpose := range variants() {
		t.Run(name, func(t *testing.T) {
			pool := strictPool(2)
			const n = 40
			completed, crashed := runAddsUntilCrash(t, pool, interpose, n, -1)
			if crashed || completed != n {
				t.Fatalf("unexpected crash (completed %d)", completed)
			}
			recoverAndCheck(t, pool, interpose, n, n)
		})
	}
}

func TestSystematicCrashPoints(t *testing.T) {
	// Sweep the failure point across the whole execution: at every crash
	// site, recovery must yield a consistent prefix containing all
	// completed transactions. The stride keeps the test fast while still
	// hitting hundreds of distinct instruction boundaries.
	for name, interpose := range variants() {
		t.Run(name, func(t *testing.T) {
			const n = 25
			for fail := int64(1); ; fail += 7 {
				pool := strictPool(2)
				completed, crashed := runAddsUntilCrash(t, pool, interpose, n, fail)
				if !crashed {
					if completed != n {
						t.Fatalf("no crash but only %d/%d completed", completed, n)
					}
					break
				}
				recoverAndCheck(t, pool, interpose, completed, n)
			}
		})
	}
}

func TestAdversarialCrashPoints(t *testing.T) {
	// Same sweep, but unflushed dirty lines may spuriously persist
	// (cache eviction). Durable linearizability must still hold.
	rng := rand.New(rand.NewSource(42))
	const n = 20
	for fail := int64(1); ; fail += 13 {
		pool := strictPool(2)
		completed, crashed := runAddsUntilCrash(t, pool, true, n, fail)
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashAdversarial, rng)
		e := New(pool, Config{Threads: 1, Interpose: true})
		s := seqds.ListSet{RootSlot: 0}
		keys := seqds.ReadSlice(e, 0, s.Keys)
		if len(keys) < completed {
			t.Fatalf("fail=%d: recovered %d keys, %d completed", fail, len(keys), completed)
		}
		for i, k := range keys {
			if k != uint64(i)+1 {
				t.Fatalf("fail=%d: inconsistent recovered state at %d: %d", fail, i, k)
			}
		}
	}
}

func TestDoubleCrash(t *testing.T) {
	pool := strictPool(2)
	const n = 10
	if _, crashed := runAddsUntilCrash(t, pool, true, n, -1); crashed {
		t.Fatal("unexpected crash")
	}
	pool.Crash(pmem.CrashConservative, nil)
	// Second era: recover, add more, crash again.
	e := New(pool, Config{Threads: 1, Interpose: true})
	s := seqds.ListSet{RootSlot: 0}
	for k := n; k < 2*n; k++ {
		e.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, uint64(k)+1)
			return 0
		})
	}
	pool.Crash(pmem.CrashConservative, nil)
	// Third era: everything from both eras must be present.
	e = New(pool, Config{Threads: 1, Interpose: true})
	keys := seqds.ReadSlice(e, 0, s.Keys)
	if len(keys) != 2*n {
		t.Fatalf("recovered %d keys after two eras, want %d", len(keys), 2*n)
	}
	for i, k := range keys {
		if k != uint64(i)+1 {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
}

func TestConcurrentThenCrash(t *testing.T) {
	// Multi-threaded load, quiesce, crash: every completed transaction
	// must survive (durable linearizability under concurrency).
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 8})
	e := New(pool, Config{Threads: 4, Interpose: true})
	addr := ptm.RootAddr(0)
	done := make(chan struct{})
	for tid := 0; tid < 4; tid++ {
		go func(tid int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				e.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
			}
		}(tid)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	pool.Crash(pmem.CrashConservative, nil)
	e = New(pool, Config{Threads: 4, Interpose: true})
	got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) })
	if got != 400 {
		t.Fatalf("recovered counter = %d, want 400", got)
	}
}

// TestCrashAfterInvalidationCopies stresses the replica-invalidation copy
// path (tiny reclamation window, heavy contention) in Strict mode and then
// crashes: a replica that was rebuilt by copy and later published as
// curComb must have had its copied content flushed, or recovery reads a
// stale image.
func TestCrashAfterInvalidationCopies(t *testing.T) {
	// Inserts allocate fresh nodes on fresh cache lines, so a replica
	// that was rebuilt by copy carries content on lines that no later
	// transaction will track — exactly the state that must have been
	// flushed during the copy.
	const threads, per = 4, 150
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 15, Regions: 2 * threads})
	e := New(pool, Config{Threads: threads, Interpose: true, Window: 8})
	s := seqds.ListSet{RootSlot: 0}
	e.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	done := make(chan struct{})
	for tid := 0; tid < threads; tid++ {
		go func(tid int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				k := uint64(tid*per+i) + 1
				e.Update(tid, func(m ptm.Mem) uint64 {
					s.Add(m, k)
					return 0
				})
			}
		}(tid)
	}
	for i := 0; i < threads; i++ {
		<-done
	}
	if e.Copies() == 0 {
		t.Skip("no replica copies occurred; cannot exercise the path")
	}
	pool.Crash(pmem.CrashConservative, nil)
	e2 := New(pool, Config{Threads: threads, Interpose: true})
	missing := e2.Read(0, func(m ptm.Mem) uint64 {
		var missing uint64
		for k := uint64(1); k <= threads*per; k++ {
			if !s.Contains(m, k) {
				missing++
			}
		}
		return missing
	})
	if missing != 0 {
		t.Fatalf("%d completed inserts lost after crash (copied replica content was not durable; %d copies occurred)",
			missing, e2.Copies())
	}
}
