package cx

import "repro/internal/pmem"

// StaleRanges reports the regions that committed state does not reach:
// every replica other than the one the persisted curComb names. Recovery
// leaves the other replicas' heads invalid, so the first writer to claim
// one copies the named replica over it before any load — bit flips there
// must never surface. With no valid header nothing is committed and every
// region is fair game.
func StaleRanges(pool *pmem.Pool) []pmem.Range {
	packed := pool.PersistedHeader(headerSlot)
	cur := -1
	if packed != 0 {
		_, cur = unpackCurComb(packed)
	}
	var ranges []pmem.Range
	for i := 0; i < pool.Regions(); i++ {
		if i != cur {
			ranges = append(ranges, pool.WholeRegion(i))
		}
	}
	return ranges
}
