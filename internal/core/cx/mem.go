package cx

import (
	"sort"

	"repro/internal/palloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// directMem is the CX-PUC view of a replica: in-place loads and stores with
// no interposition whatsoever, exactly as the paper's "no annotation of the
// sequential implementation". Durability is obtained by flushing the whole
// used heap before a curComb transition.
type directMem struct {
	region *pmem.Region
}

func (m directMem) Load(addr uint64) uint64   { return m.region.Load(addr) }
func (m directMem) Store(addr, val uint64)    { m.region.Store(addr, val) }
func (m directMem) Alloc(words uint64) uint64 { return palloc.Alloc(m, words) }
func (m directMem) Free(addr uint64)          { palloc.Free(m, addr) }

// trackedMem is the CX-PTM view of a replica: stores are interposed to
// record the cache line they touch, so only mutated lines are flushed. Loads
// need no pointer-offset adjustment in this model because all references are
// region-relative offsets (see DESIGN.md).
type trackedMem struct {
	region *pmem.Region
	comb   *combined
}

func (m trackedMem) Load(addr uint64) uint64 { return m.region.Load(addr) }

func (m trackedMem) Store(addr, val uint64) {
	m.region.Store(addr, val)
	m.comb.dirty = append(m.comb.dirty, addr/pmem.WordsPerLine)
}

func (m trackedMem) Alloc(words uint64) uint64 { return palloc.Alloc(m, words) }
func (m trackedMem) Free(addr uint64)          { palloc.Free(m, addr) }

// memFor returns the transactional view of comb's replica. writer is nil
// for read-only access (no tracking needed even under CX-PTM).
func (c *CX) memFor(comb *combined, writer *combined) ptm.Mem {
	if c.cfg.Interpose && writer != nil {
		return trackedMem{region: comb.region, comb: writer}
	}
	return directMem{region: comb.region}
}

// flushTracked issues one PWB per distinct dirty cache line and resets the
// tracking list. The caller still needs a fence.
func (comb *combined) flushTracked() {
	if len(comb.dirty) == 0 {
		return
	}
	sort.Slice(comb.dirty, func(i, j int) bool { return comb.dirty[i] < comb.dirty[j] })
	var last uint64 = ^uint64(0)
	for _, line := range comb.dirty {
		if line != last {
			comb.region.PWB(line * pmem.WordsPerLine)
			last = line
		}
	}
	comb.dirty = comb.dirty[:0]
}
