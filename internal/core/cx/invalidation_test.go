package cx

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// TestCopiedReplicaContentIsDurable constructs the replica-invalidation
// scenario deterministically: a large object is built while one replica
// stays stale; that replica is then forced (by locking out all others) to
// rebuild itself by copy and immediately publish as curComb. Crashing right
// after must not lose the copied content — the copy itself must have been
// made durable, not just the lines the publishing transaction touched.
func TestCopiedReplicaContentIsDurable(t *testing.T) {
	const threads = 2
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 15, Regions: 4})
	e := New(pool, Config{Threads: threads, Interpose: true})
	s := seqds.ListSet{RootSlot: 0}
	e.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	// Build a large object; a single thread alternates between two
	// replicas, so combs[2] and combs[3] stay in their initial invalid
	// state (head == nil).
	const keys = 400
	for k := uint64(1); k <= keys; k++ {
		key := (k * 2654435761) % 1000000
		e.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, key)
			return 0
		})
	}
	// Force the next update onto an invalid replica: exclusively lock
	// every valid non-curComb replica.
	cur := e.curComb.Load()
	locked := 0
	for _, comb := range e.combs {
		if comb == cur || comb.head.Load() == nil {
			continue
		}
		if !comb.lk.ExclusiveTryLock(1) {
			t.Fatalf("could not lock out a valid replica")
		}
		locked++
	}
	if locked == 0 {
		t.Fatal("setup failed: no valid replica to lock out")
	}
	before := e.Copies()
	e.Update(0, func(m ptm.Mem) uint64 {
		s.Add(m, 42)
		return 0
	})
	if e.Copies() == before {
		t.Fatal("setup failed: the update did not take the copy path")
	}
	// The copied replica is now curComb and its full content must be
	// durable.
	pool.Crash(pmem.CrashConservative, nil)
	e2 := New(pool, Config{Threads: threads, Interpose: true})
	missing := e2.Read(0, func(m ptm.Mem) uint64 {
		var missing uint64
		for k := uint64(1); k <= keys; k++ {
			if !s.Contains(m, (k*2654435761)%1000000) {
				missing++
			}
		}
		if !s.Contains(m, 42) {
			missing++
		}
		return missing
	})
	if missing != 0 {
		t.Fatalf("%d completed inserts lost: the replica copy was not flushed before publication", missing)
	}
}
