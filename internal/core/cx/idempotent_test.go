package cx

import (
	"reflect"
	"testing"

	"repro/internal/pmem"
	"repro/internal/seqds"
)

// TestRecoverIsIdempotent recovers the same crashed pool repeatedly:
// recovery of an already-recovered image must reproduce the same logical
// state and issue exactly the same persistence work each time, so a crashed
// recovery can always be re-run from the top (the nested-failure model).
func TestRecoverIsIdempotent(t *testing.T) {
	for _, interpose := range []bool{true, false} {
		name := "PUC"
		if interpose {
			name = "PTM"
		}
		t.Run(name, func(t *testing.T) {
			pool := strictPool(2)
			_, crashed := runAddsUntilCrash(t, pool, interpose, 20, 57)
			if !crashed {
				t.Fatal("failure point never fired")
			}
			pool.Crash(pmem.CrashConservative, nil)
			var stats [3]pmem.StatsSnapshot
			var keys [3][]uint64
			for i := range stats {
				pool.ResetStats()
				e := New(pool, Config{Threads: 1, Interpose: interpose})
				stats[i] = pool.Stats()
				s := seqds.ListSet{RootSlot: 0}
				keys[i] = seqds.ReadSlice(e, 0, s.Keys)
				pool.Crash(pmem.CrashConservative, nil)
			}
			if !reflect.DeepEqual(keys[1], keys[0]) || !reflect.DeepEqual(keys[2], keys[1]) {
				t.Fatalf("recovered state drifted across recoveries: %v / %v / %v",
					keys[0], keys[1], keys[2])
			}
			if stats[1] != stats[2] {
				t.Fatalf("recovery work drifted: %+v vs %+v", stats[1], stats[2])
			}
		})
	}
}
