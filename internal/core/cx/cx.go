// Package cx implements the CX-based persistent constructions of §4 of the
// paper: CX-PUC, the first bounded wait-free persistent universal
// construction (no store/load interposition, whole-object flush), and
// CX-PTM, the persistent transactional memory variant (interposed stores,
// per-cache-line flushes).
//
// The engine follows the paper's structure: a fixed array of Combined
// replicas (2N for N threads), each protected by a strong try reader-writer
// lock; a wait-free queue of logical mutations that establishes the
// linearization; and curComb, the only persistent piece of construction
// state, which always references a replica whose content is both up to date
// and durable. An update transaction issues exactly one pfence (ordering the
// replica's flushed lines) and one psync (making the new curComb durable).
//
// Memory reclamation of queue nodes is delegated to the Go garbage
// collector; the externally visible effect of the paper's hazard-pointer
// scheme — a replica becoming invalid because its cursor fell behind the
// reclaimed window — is reproduced with a ticket window (Config.Window).
package cx

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/palloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/rwlock"
	"repro/internal/uqueue"
)

// opDesc is the payload of a queue node: a deterministic closure plus its
// published result.
type opDesc struct {
	fn      func(ptm.Mem) uint64
	result  atomic.Uint64
	applied atomic.Bool
}

type node = uqueue.Node[*opDesc]

// combined is one replica ("Combined instance" in the paper): a persistent
// region holding a full copy of the heap, a cursor into the mutation queue,
// and the lock that arbitrates access.
type combined struct {
	head   atomic.Pointer[node]
	region *pmem.Region
	lk     *rwlock.StrongTryRWLock
	// dirty collects the cache lines touched by interposed stores while
	// this replica is exclusively held (CX-PTM only).
	dirty []uint64
	// flushAll records that the replica was rebuilt by copy: the whole
	// used heap must be flushed before publication, because the copied
	// content is not covered by store tracking.
	flushAll bool
}

// headerSlot is the pool header slot where curComb is persisted, packed as
// validBit | ticket<<8 | regionIndex. The valid bit distinguishes a freshly
// zeroed pool from one whose first curComb (ticket 0, region 0) is durable.
const headerSlot = 0

const headerValid = uint64(1) << 63

func packCurComb(ticket uint64, region int) uint64 {
	return headerValid | ticket<<8 | uint64(region)
}

func unpackCurComb(v uint64) (ticket uint64, region int) {
	return (v &^ headerValid) >> 8, int(v & 0xff)
}

// Config parameterizes the CX engine.
type Config struct {
	// Threads is N, the number of usable thread ids.
	Threads int
	// Interpose selects CX-PTM (tracked stores, per-line flush) over
	// CX-PUC (no interposition, whole-heap flush).
	Interpose bool
	// Window is the reclamation window in queue tickets: a replica whose
	// cursor falls more than Window tickets behind is invalidated and
	// rebuilt by copy, as when the hazard-pointer scheme reclaims nodes.
	// Defaults to 1024.
	Window uint64
	// MaxReadTries is the number of optimistic read attempts before a
	// reader enqueues its operation. Defaults to 4.
	MaxReadTries int
	// Profile, when non-nil, accumulates the Table 1 phase breakdown.
	Profile *ptm.Profile
}

// CX is the engine shared by CX-PUC and CX-PTM.
type CX struct {
	cfg       Config
	pool      *pmem.Pool
	queue     *uqueue.Queue[*opDesc]
	combs     []*combined
	curComb   atomic.Pointer[combined]
	persisted atomic.Uint64 // highest ticket known durable in the header
	copies    atomic.Uint64 // replica copies performed (ablation metric)
}

// New creates a CX engine over pool. The pool should have 2N regions for
// wait freedom (the paper's bound); any count >= 2 works, trading progress
// for memory. If the pool header records a previous instantiation (recovery
// after a crash), the persisted replica is adopted; otherwise region 0 is
// formatted as the initial heap and persisted.
//
// CX has null recovery: this constructor is also the recovery procedure.
func New(pool *pmem.Pool, cfg Config) *CX {
	if cfg.Threads <= 0 {
		panic("cx: Threads must be positive")
	}
	if pool.Regions() < 2 {
		panic("cx: pool needs at least 2 regions")
	}
	if cfg.Window == 0 {
		cfg.Window = 1024
	}
	if cfg.MaxReadTries == 0 {
		cfg.MaxReadTries = 4
	}
	c := &CX{
		cfg:   cfg,
		pool:  pool,
		queue: uqueue.New[*opDesc](cfg.Threads),
	}
	c.combs = make([]*combined, pool.Regions())
	for i := range c.combs {
		c.combs[i] = &combined{
			region: pool.Region(i),
			lk:     rwlock.New(cfg.Threads),
		}
	}
	cur := 0
	pool.TraceEvent(obs.KindRecoveryBegin, -1, -1, 0, 0, 0)
	if packed := pool.PersistedHeader(headerSlot); packed != 0 {
		// Recovery: adopt the persisted replica. All other replicas
		// are stale (head left nil), so the next writer on them will
		// copy from curComb — the paper's "copy of the data structure
		// is required on the first update transaction" after restart.
		_, cur = unpackCurComb(packed)
		if cur >= len(c.combs) {
			panic(pmem.Corruptf("cx", "recovered curComb names region %d of %d", cur, len(c.combs)))
		}
		// Ticket numbering restarts with the fresh queue: rewrite the
		// header for the new era so monotonic updates work.
		pool.HeaderStore(headerSlot, packCurComb(0, cur))
		pool.PWBHeader(headerSlot)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, headerSlot, 1, 0)
	} else {
		palloc.Format(directMem{c.combs[0].region}, pool.RegionWords())
		meta := palloc.MetaWords(directMem{c.combs[0].region})
		c.combs[0].region.FlushRange(0, meta)
		c.combs[0].region.PFence()
		pool.TraceEvent(obs.KindPublish, -1, 0, 0, meta, obs.PubHeap)
		pool.HeaderStore(headerSlot, packCurComb(0, 0))
		pool.PWBHeader(headerSlot)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, headerSlot, 1, 0)
	}
	pool.TraceEvent(obs.KindRecoveryEnd, -1, -1, 0, 0, 0)
	// curComb's replica is up to date as of the (fresh) queue sentinel.
	c.combs[cur].head.Store(c.queue.Head())
	// curComb is held downgraded so no writer can claim it while readers
	// may arrive; the thread that replaces it releases the hold.
	if !c.combs[cur].lk.ExclusiveTryLock(0) {
		panic("cx: initial lock acquisition failed")
	}
	c.combs[cur].lk.Downgrade()
	c.curComb.Store(c.combs[cur])
	return c
}

// MaxThreads implements ptm.PTM.
func (c *CX) MaxThreads() int { return c.cfg.Threads }

// Name implements ptm.PTM.
func (c *CX) Name() string {
	if c.cfg.Interpose {
		return "CX-PTM"
	}
	return "CX-PUC"
}

// Properties implements ptm.PTM, mirroring the §2 comparison table.
func (c *CX) Properties() ptm.Properties {
	return ptm.Properties{
		Log:         ptm.VolatileLogical,
		Progress:    ptm.WaitFree,
		FencesPerTx: "2",
		Replicas:    "2N",
	}
}

// Copies reports how many replica rebuild copies the engine performed.
func (c *CX) Copies() uint64 { return c.copies.Load() }

// Update implements ptm.PTM: it runs fn as a durable linearizable update
// transaction with bounded wait-free progress.
func (c *CX) Update(tid int, fn func(ptm.Mem) uint64) uint64 {
	txStart := now(c.cfg.Profile)
	desc := &opDesc{fn: fn}
	myNode := c.queue.Enqueue(tid, desc)

	for {
		// Fast exit: a helper already executed and published our op.
		if desc.applied.Load() {
			cur := c.curComb.Load()
			h := cur.head.Load()
			if h != nil && h.Ticket() >= myNode.Ticket() {
				c.ensurePersisted(tid, myNode.Ticket())
				c.cfg.Profile.AddTx(since(c.cfg.Profile, txStart))
				return desc.result.Load()
			}
		}
		comb := c.acquireCombined(tid, myNode)
		if comb == nil {
			continue // replica invalidated mid-copy; retry
		}
		// Apply every queued mutation from the replica's cursor up to
		// (and including) our node.
		c.pool.TraceEvent(obs.KindCombineBegin, tid, comb.region.Index(), 0, 0, myNode.Ticket())
		applyStart := now(c.cfg.Profile)
		cursor := comb.head.Load()
		for cursor.Ticket() < myNode.Ticket() {
			next := cursor.Next()
			if next == nil {
				break
			}
			c.execute(next, comb)
			cursor = next
		}
		c.cfg.Profile.AddApply(since(c.cfg.Profile, applyStart))
		comb.head.Store(cursor)
		if cursor.Ticket() < myNode.Ticket() {
			// Our node was not yet linked past this cursor (helping
			// still in flight); release and retry.
			c.pool.TraceEvent(obs.KindCombineEnd, tid, comb.region.Index(), 0, 0, 0)
			comb.lk.ExclusiveUnlock()
			continue
		}
		// Make the replica durable, then race to publish it.
		flushStart := now(c.cfg.Profile)
		c.flushReplica(comb)
		comb.region.PFence()
		if c.pool.Traced() {
			// The published span is the allocator high-water mark — a
			// runtime value no static fence analysis can know.
			used := palloc.UsedWords(directMem{comb.region})
			c.pool.TraceEvent(obs.KindPublish, tid, comb.region.Index(), 0, used, obs.PubHeap)
		}
		c.cfg.Profile.AddFlush(since(c.cfg.Profile, flushStart))
		comb.lk.Downgrade()
		c.transition(tid, comb, myNode)
		c.ensurePersisted(tid, myNode.Ticket())
		c.pool.TraceEvent(obs.KindCombineEnd, tid, comb.region.Index(), 0, 0, 1)
		c.cfg.Profile.AddTx(since(c.cfg.Profile, txStart))
		return desc.result.Load()
	}
}

// Read implements ptm.PTM: it runs fn as a wait-free read-only transaction.
func (c *CX) Read(tid int, fn func(ptm.Mem) uint64) uint64 {
	var desc *opDesc
	var myNode *node
	for i := 0; ; i++ {
		if i == c.cfg.MaxReadTries {
			// Fall back to the mutation queue: an updater will
			// execute the read on its replica.
			desc = &opDesc{fn: fn}
			myNode = c.queue.Enqueue(tid, desc)
		}
		if desc != nil && desc.applied.Load() {
			// Return only once curComb covers our position in the
			// queue (so ensurePersisted can make it durable).
			cur := c.curComb.Load()
			if h := cur.head.Load(); h != nil && h.Ticket() >= myNode.Ticket() {
				c.ensurePersisted(tid, myNode.Ticket())
				return desc.result.Load()
			}
		}
		cur := c.curComb.Load()
		if !cur.lk.SharedTryLock(tid) {
			continue
		}
		if c.curComb.Load() != cur {
			cur.lk.SharedUnlock(tid)
			continue
		}
		h := cur.head.Load()
		res := fn(c.memFor(cur, nil))
		cur.lk.SharedUnlock(tid)
		// Durable linearizability: the state this read observed must
		// be durable before the read returns.
		c.ensurePersisted(tid, h.Ticket())
		return res
	}
}

// acquireCombined obtains an exclusive replica and brings it to a valid
// state (copying from curComb if it was invalidated). Returns nil if the
// optimistic copy failed and the caller should re-check for helping.
func (c *CX) acquireCombined(tid int, myNode *node) *combined {
	var comb *combined
	for {
		for _, cand := range c.combs {
			if cand == c.curComb.Load() {
				continue
			}
			if cand.lk.ExclusiveTryLock(tid) {
				comb = cand
				break
			}
		}
		if comb != nil {
			break
		}
		// All replicas busy this pass; check whether a helper
		// finished our operation while we scanned.
		if myNode.Val.applied.Load() {
			return nil
		}
	}
	// Validity: the cursor must still be inside the reclamation window.
	h := comb.head.Load()
	if h != nil && h.Ticket() >= c.queue.Head().Ticket() {
		return comb
	}
	if !c.copyFromCur(tid, comb) {
		comb.lk.ExclusiveUnlock()
		return nil
	}
	return comb
}

// copyFromCur rebuilds comb's replica from the current curComb under a
// shared lock on the source. Returns false if curComb moved mid-copy.
func (c *CX) copyFromCur(tid int, comb *combined) bool {
	copyStart := now(c.cfg.Profile)
	defer func() { c.cfg.Profile.AddCopy(since(c.cfg.Profile, copyStart)) }()
	for attempt := 0; attempt < 4; attempt++ {
		src := c.curComb.Load()
		if !src.lk.SharedTryLock(tid) {
			continue
		}
		if c.curComb.Load() != src {
			src.lk.SharedUnlock(tid)
			continue
		}
		used := palloc.UsedWords(directMem{src.region})
		comb.region.CopyFrom(src.region, used)
		comb.head.Store(src.head.Load())
		src.lk.SharedUnlock(tid)
		comb.flushAll = true
		comb.dirty = comb.dirty[:0]
		c.copies.Add(1)
		return true
	}
	return false
}

// execute runs one queued operation against comb's replica and publishes
// its result. Every replica executes every operation (that is the CX cost
// model Redo-PTM later removes); the result is published once.
func (c *CX) execute(n *node, comb *combined) {
	lambdaStart := now(c.cfg.Profile)
	res := n.Val.fn(c.memFor(comb, comb))
	c.cfg.Profile.AddLambda(since(c.cfg.Profile, lambdaStart))
	if !n.Val.applied.Load() {
		n.Val.result.Store(res)
		n.Val.applied.Store(true)
	}
}

// transition publishes comb (already downgraded and durable) as the new
// curComb, following step 6 of the paper's applyUpdate: retry the CAS until
// it succeeds or until curComb already covers our node.
func (c *CX) transition(tid int, comb *combined, myNode *node) {
	myTicket := myNode.Ticket()
	for {
		cur := c.curComb.Load()
		curHead := cur.head.Load()
		if cur == comb {
			return
		}
		if curHead != nil && curHead.Ticket() >= myTicket {
			// Someone else published a replica containing our op;
			// our replica is no longer needed as curComb.
			comb.lk.DowngradeUnlock()
			return
		}
		if c.curComb.CompareAndSwap(cur, comb) {
			c.pool.TraceEvent(obs.KindCurComb, tid, comb.region.Index(), 0, 0,
				packCurComb(comb.head.Load().Ticket(), comb.region.Index()))
			// Release the previous curComb for reuse by writers.
			cur.lk.DowngradeUnlock()
			c.advanceWindow(comb.head.Load())
			return
		}
	}
}

// ensurePersisted guarantees the persistent curComb header covers at least
// the given ticket: the caller's transaction is durable once this returns.
// This is the paper's `if ringtail.seq < tail.seq { pwb(curComb); psync() }`
// check — the pwb+psync is skipped when another thread already persisted a
// ticket at least as high.
func (c *CX) ensurePersisted(tid int, ticket uint64) {
	for c.persisted.Load() < ticket {
		cur := c.curComb.Load()
		t := cur.head.Load().Ticket()
		packed := packCurComb(t, cur.region.Index())
		for {
			old := c.pool.HeaderLoad(headerSlot)
			oldT, _ := unpackCurComb(old)
			if oldT >= t {
				break
			}
			if c.pool.HeaderCAS(headerSlot, old, packed) {
				break
			}
		}
		c.pool.PWBHeader(headerSlot)
		c.pool.PSync()
		c.pool.TraceEvent(obs.KindHeaderPublish, tid, -1, headerSlot, 1, 0)
		for {
			p := c.persisted.Load()
			if p >= t || c.persisted.CompareAndSwap(p, t) {
				break
			}
		}
	}
}

// advanceWindow moves the queue's reclamation door forward so it trails the
// new curComb by at most the configured window, reproducing hazard-pointer
// reclamation of old queue nodes.
func (c *CX) advanceWindow(newest *node) {
	door := c.queue.Head()
	if newest.Ticket() < door.Ticket()+c.cfg.Window {
		return
	}
	target := newest.Ticket() - c.cfg.Window/2
	n := door
	for n.Ticket() < target {
		next := n.Next()
		if next == nil {
			break
		}
		n = next
	}
	c.queue.AdvanceHead(n)
}

// flushReplica makes the replica's modified content durable-ready: CX-PTM
// flushes the lines its interposed stores touched — or the whole used heap
// when the replica was just rebuilt by copy, since the copied bulk is not
// covered by tracking; CX-PUC, which has no interposition, always flushes
// the whole used heap.
func (c *CX) flushReplica(comb *combined) {
	if c.cfg.Interpose && !comb.flushAll {
		comb.flushTracked()
		return
	}
	used := palloc.UsedWords(directMem{comb.region})
	comb.region.FlushRange(0, used)
	comb.flushAll = false
	comb.dirty = comb.dirty[:0]
}

// now/since avoid the time.Now() cost when profiling is disabled.
func now(p *ptm.Profile) time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

func since(p *ptm.Profile, t time.Time) time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(t)
}
