package cx

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

func newEngine(t testing.TB, threads int, interpose bool, mode pmem.Mode) (*CX, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(pmem.Config{
		Mode:        mode,
		RegionWords: 1 << 16,
		Regions:     2 * threads,
	})
	if threads == 1 {
		// The paper's bound is 2N; with N=1 that is 2 regions.
		pool = pmem.New(pmem.Config{Mode: mode, RegionWords: 1 << 16, Regions: 2})
	}
	return New(pool, Config{Threads: threads, Interpose: interpose}), pool
}

func variants() map[string]bool { return map[string]bool{"CX-PUC": false, "CX-PTM": true} }

func TestNameAndProperties(t *testing.T) {
	for name, interpose := range variants() {
		e, _ := newEngine(t, 1, interpose, pmem.Direct)
		if e.Name() != name {
			t.Errorf("Name() = %q, want %q", e.Name(), name)
		}
		p := e.Properties()
		if p.Progress != ptm.WaitFree || p.FencesPerTx != "2" || p.Replicas != "2N" {
			t.Errorf("%s Properties() = %+v", name, p)
		}
		if e.MaxThreads() != 1 {
			t.Errorf("MaxThreads() = %d", e.MaxThreads())
		}
	}
}

func TestNewValidation(t *testing.T) {
	pool := pmem.New(pmem.Config{RegionWords: 1 << 10, Regions: 2})
	for _, cfg := range []Config{{Threads: 0}, {Threads: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with %+v did not panic", cfg)
				}
			}()
			New(pool, cfg)
		}()
	}
	one := pmem.New(pmem.Config{RegionWords: 1 << 10, Regions: 1})
	defer func() {
		if recover() == nil {
			t.Error("New with 1 region did not panic")
		}
	}()
	New(one, Config{Threads: 1})
}

func TestCounterSingleThread(t *testing.T) {
	for name, interpose := range variants() {
		t.Run(name, func(t *testing.T) {
			e, _ := newEngine(t, 1, interpose, pmem.Direct)
			addr := ptm.RootAddr(0)
			for i := 0; i < 100; i++ {
				e.Update(0, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
			}
			got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) })
			if got != 100 {
				t.Fatalf("counter = %d, want 100", got)
			}
		})
	}
}

func TestUpdateReturnsResult(t *testing.T) {
	e, _ := newEngine(t, 1, true, pmem.Direct)
	got := e.Update(0, func(m ptm.Mem) uint64 { return 12345 })
	if got != 12345 {
		t.Fatalf("Update returned %d, want 12345", got)
	}
}

func TestSetSequential(t *testing.T) {
	for name, interpose := range variants() {
		t.Run(name, func(t *testing.T) {
			e, _ := newEngine(t, 1, interpose, pmem.Direct)
			s := seqds.ListSet{RootSlot: 0}
			e.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
			model := make(map[uint64]bool)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 500; i++ {
				k := uint64(rng.Intn(100))
				switch rng.Intn(3) {
				case 0:
					got := e.Update(0, func(m ptm.Mem) uint64 {
						if s.Add(m, k) {
							return 1
						}
						return 0
					})
					if (got == 1) != !model[k] {
						t.Fatalf("Add(%d) = %d, model %v", k, got, model[k])
					}
					model[k] = true
				case 1:
					got := e.Update(0, func(m ptm.Mem) uint64 {
						if s.Remove(m, k) {
							return 1
						}
						return 0
					})
					if (got == 1) != model[k] {
						t.Fatalf("Remove(%d) = %d, model %v", k, got, model[k])
					}
					delete(model, k)
				case 2:
					got := e.Read(0, func(m ptm.Mem) uint64 {
						if s.Contains(m, k) {
							return 1
						}
						return 0
					})
					if (got == 1) != model[k] {
						t.Fatalf("Contains(%d) = %d, model %v", k, got, model[k])
					}
				}
			}
		})
	}
}

func TestConcurrentCounter(t *testing.T) {
	for name, interpose := range variants() {
		t.Run(name, func(t *testing.T) {
			const threads, perThread = 6, 300
			e, _ := newEngine(t, threads, interpose, pmem.Direct)
			addr := ptm.RootAddr(0)
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < perThread; i++ {
						e.Update(tid, func(m ptm.Mem) uint64 {
							v := m.Load(addr) + 1
							m.Store(addr, v)
							return v
						})
					}
				}(tid)
			}
			wg.Wait()
			got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) })
			if got != threads*perThread {
				t.Fatalf("counter = %d, want %d (lost updates)", got, threads*perThread)
			}
		})
	}
}

func TestUpdateResultsAreExactlyOnce(t *testing.T) {
	// Each update returns the post-increment value; across all threads the
	// returned values must be a permutation of 1..total, proving every
	// transaction executed exactly once in a total order.
	const threads, perThread = 4, 250
	e, _ := newEngine(t, threads, true, pmem.Direct)
	addr := ptm.RootAddr(0)
	results := make([][]uint64, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				r := e.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
				results[tid] = append(results[tid], r)
			}
		}(tid)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for tid := range results {
		last := uint64(0)
		for _, r := range results[tid] {
			if seen[r] {
				t.Fatalf("result %d returned twice", r)
			}
			seen[r] = true
			if r <= last {
				t.Fatalf("thread %d results not monotonic: %d after %d", tid, r, last)
			}
			last = r
		}
	}
	if len(seen) != threads*perThread {
		t.Fatalf("%d distinct results, want %d", len(seen), threads*perThread)
	}
	for v := uint64(1); v <= threads*perThread; v++ {
		if !seen[v] {
			t.Fatalf("result %d missing", v)
		}
	}
}

func TestConcurrentReadersSeeConsistentState(t *testing.T) {
	// Writers keep two words equal; readers must never observe a mismatch.
	const writers, readers = 3, 3
	const perWriter = 400
	e, _ := newEngine(t, writers+readers, true, pmem.Direct)
	a, b := ptm.RootAddr(0), ptm.RootAddr(1)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(a) + 1
					m.Store(a, v)
					m.Store(b, v)
					return v
				})
			}
		}(w)
	}
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if e.Read(tid, func(m ptm.Mem) uint64 {
					if m.Load(a) != m.Load(b) {
						return 1
					}
					return 0
				}) == 1 {
					errs <- "reader observed torn transaction"
					return
				}
			}
		}(writers + r)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func TestTwoFencesPerUpdate(t *testing.T) {
	for name, interpose := range variants() {
		t.Run(name, func(t *testing.T) {
			e, pool := newEngine(t, 1, interpose, pmem.Direct)
			addr := ptm.RootAddr(0)
			e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 1); return 0 })
			before := pool.Stats()
			const n = 50
			for i := 0; i < n; i++ {
				e.Update(0, func(m ptm.Mem) uint64 {
					m.Store(addr, m.Load(addr)+1)
					return 0
				})
			}
			d := pool.Stats().Sub(before)
			if got := d.Fences(); got != 2*n {
				t.Fatalf("%d fences for %d update txs, want exactly %d (2 per tx)", got, n, 2*n)
			}
			if d.PFences != n || d.PSyncs != n {
				t.Fatalf("fence split pfence=%d psync=%d, want %d/%d", d.PFences, d.PSyncs, n, n)
			}
		})
	}
}

func TestCXPTMFlushesOnlyMutatedLines(t *testing.T) {
	e, pool := newEngine(t, 1, true, pmem.Direct)
	addr := ptm.RootAddr(0)
	e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 1); return 0 })
	before := pool.Stats()
	// One store to one line → 1 data pwb + 1 header pwb.
	e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 2); return 0 })
	d := pool.Stats().Sub(before)
	if d.PWBs != 2 {
		t.Fatalf("pwbs = %d, want 2 (one mutated line + header)", d.PWBs)
	}
}

func TestCXPUCFlushesWholeHeap(t *testing.T) {
	e, pool := newEngine(t, 1, false, pmem.Direct)
	addr := ptm.RootAddr(0)
	e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 1); return 0 })
	before := pool.Stats()
	e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 2); return 0 })
	d := pool.Stats().Sub(before)
	// Whole used heap: at least the allocator metadata region.
	if d.PWBs < 5 {
		t.Fatalf("pwbs = %d, want whole-heap flush (no interposition)", d.PWBs)
	}
}

func TestReadAfterDurableUpdateIssuesNoFence(t *testing.T) {
	e, pool := newEngine(t, 1, true, pmem.Direct)
	addr := ptm.RootAddr(0)
	e.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 7); return 0 })
	before := pool.Stats()
	for i := 0; i < 10; i++ {
		if got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 7 {
			t.Fatalf("Read = %d, want 7", got)
		}
	}
	if d := pool.Stats().Sub(before); d.Fences() != 0 {
		t.Fatalf("reads issued %d fences, want 0 (state already durable)", d.Fences())
	}
}

func TestWindowInvalidationForcesCopies(t *testing.T) {
	pool := pmem.New(pmem.Config{RegionWords: 1 << 16, Regions: 8})
	e := New(pool, Config{Threads: 4, Interpose: true, Window: 16})
	addr := ptm.RootAddr(0)
	var wg sync.WaitGroup
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
			}
		}(tid)
	}
	wg.Wait()
	if got := e.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 2000 {
		t.Fatalf("counter = %d, want 2000", got)
	}
	if e.Copies() == 0 {
		t.Fatal("tiny window produced no replica copies")
	}
}

func TestReadFallbackUnderWriteStorm(t *testing.T) {
	pool := pmem.New(pmem.Config{RegionWords: 1 << 16, Regions: 8})
	e := New(pool, Config{Threads: 4, Interpose: true, MaxReadTries: 1})
	addr := ptm.RootAddr(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for tid := 0; tid < 3; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					e.Update(tid, func(m ptm.Mem) uint64 {
						v := m.Load(addr) + 1
						m.Store(addr, v)
						return v
					})
				}
			}
		}(tid)
	}
	last := uint64(0)
	for i := 0; i < 500; i++ {
		got := e.Read(3, func(m ptm.Mem) uint64 { return m.Load(addr) })
		if got < last {
			t.Fatalf("read went backwards: %d after %d", got, last)
		}
		last = got
	}
	close(stop)
	wg.Wait()
}

func TestSPSSumPreservedConcurrently(t *testing.T) {
	const threads = 4
	e, _ := newEngine(t, threads, true, pmem.Direct)
	sps := seqds.SPS{RootSlot: 0}
	const n = 256
	e.Update(0, func(m ptm.Mem) uint64 { sps.Init(m, n); return 0 })
	want := e.Read(0, func(m ptm.Mem) uint64 { return sps.Sum(m) })
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tid)))
			for i := 0; i < 300; i++ {
				x, y := uint64(rng.Intn(n)), uint64(rng.Intn(n))
				e.Update(tid, func(m ptm.Mem) uint64 { sps.Swap(m, x, y); return 0 })
			}
		}(tid)
	}
	wg.Wait()
	if got := e.Read(0, func(m ptm.Mem) uint64 { return sps.Sum(m) }); got != want {
		t.Fatalf("Sum = %d, want %d: some swap was torn", got, want)
	}
}

func TestMultiObjectTransaction(t *testing.T) {
	// Transfer between two stacks atomically; total size is invariant.
	const threads = 4
	e, _ := newEngine(t, threads, true, pmem.Direct)
	s1 := seqds.Stack{RootSlot: 0}
	s2 := seqds.Stack{RootSlot: 1}
	e.Update(0, func(m ptm.Mem) uint64 {
		s1.Init(m)
		s2.Init(m)
		for i := uint64(0); i < 100; i++ {
			s1.Push(m, i)
		}
		return 0
	})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.Update(tid, func(m ptm.Mem) uint64 {
					if v, ok := s1.Pop(m); ok {
						s2.Push(m, v)
					} else if v, ok := s2.Pop(m); ok {
						s1.Push(m, v)
					}
					return 0
				})
			}
		}(tid)
	}
	wg.Wait()
	total := e.Read(0, func(m ptm.Mem) uint64 { return s1.Len(m) + s2.Len(m) })
	if total != 100 {
		t.Fatalf("total elements = %d, want 100 (transfer not atomic)", total)
	}
}
