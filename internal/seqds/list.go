package seqds

import "repro/internal/ptm"

// ListSet is an ordered singly-linked-list integer set, the paper's
// motivating data structure for Redo-PTM: update operations traverse the
// whole prefix of the list but modify only a couple of words, so physical
// logging lets helper threads skip the traversal.
type ListSet struct {
	RootSlot int
}

// Node layout: [key, next]. Header layout: [size, headNode]; the head node
// is a sentinel with key 0 that is never removed.
const (
	lsKey  = 0
	lsNext = 1
)

// Init creates an empty set.
func (s ListSet) Init(m ptm.Mem) {
	hdr := alloc(m, 2)
	sentinel := alloc(m, 2)
	m.Store(sentinel+lsKey, 0)
	m.Store(sentinel+lsNext, 0)
	m.Store(hdr, 0)
	m.Store(hdr+1, sentinel)
	m.Store(ptm.RootAddr(s.RootSlot), hdr)
}

func (s ListSet) hdr(m ptm.Mem) uint64 { return m.Load(ptm.RootAddr(s.RootSlot)) }

// Len returns the number of keys in the set.
func (s ListSet) Len(m ptm.Mem) uint64 { return m.Load(s.hdr(m)) }

// find returns the last node with key < k (starting at the sentinel) and its
// successor (0 if none).
func (s ListSet) find(m ptm.Mem, k uint64) (prev, cur uint64) {
	prev = m.Load(s.hdr(m) + 1)
	cur = m.Load(prev + lsNext)
	for cur != 0 && m.Load(cur+lsKey) < k {
		prev = cur
		cur = m.Load(cur + lsNext)
	}
	return prev, cur
}

// Contains reports whether k is in the set.
func (s ListSet) Contains(m ptm.Mem, k uint64) bool {
	_, cur := s.find(m, k)
	return cur != 0 && m.Load(cur+lsKey) == k
}

// Add inserts k, returning false if it was already present.
func (s ListSet) Add(m ptm.Mem, k uint64) bool {
	prev, cur := s.find(m, k)
	if cur != 0 && m.Load(cur+lsKey) == k {
		return false
	}
	n := alloc(m, 2)
	m.Store(n+lsKey, k)
	m.Store(n+lsNext, cur)
	m.Store(prev+lsNext, n)
	hdr := s.hdr(m)
	m.Store(hdr, m.Load(hdr)+1)
	return true
}

// Remove deletes k, returning false if it was not present.
func (s ListSet) Remove(m ptm.Mem, k uint64) bool {
	prev, cur := s.find(m, k)
	if cur == 0 || m.Load(cur+lsKey) != k {
		return false
	}
	m.Store(prev+lsNext, m.Load(cur+lsNext))
	m.Free(cur)
	hdr := s.hdr(m)
	m.Store(hdr, m.Load(hdr)-1)
	return true
}

// Keys returns all keys in ascending order (for tests and validation).
func (s ListSet) Keys(m ptm.Mem) []uint64 {
	var out []uint64
	cur := m.Load(m.Load(s.hdr(m)+1) + lsNext)
	for cur != 0 {
		out = append(out, m.Load(cur+lsKey))
		cur = m.Load(cur + lsNext)
	}
	return out
}
