package seqds

import "repro/internal/ptm"

// HashSet is the resizable hash set of Fig. 6 (bottom): separate chaining
// with power-of-two bucket counts, growing when the load factor exceeds 1
// and shrinking when it falls below 1/4. Insert and delete touch allocator
// metadata heavily, which is the behaviour the paper's store/flush
// aggregation optimizations exploit.
type HashSet struct {
	RootSlot int
}

// Header layout: [bucketsAddr, nbuckets, size].
// Bucket array: nbuckets words, each the head of a chain.
// Chain node layout: [key, next].
const (
	hsBuckets  = 0
	hsNBuckets = 1
	hsSize     = 2

	hsMinBuckets = 8
)

// Init creates an empty set.
func (s HashSet) Init(m ptm.Mem) {
	hdr := alloc(m, 3)
	buckets := alloc(m, hsMinBuckets)
	ptm.ZeroWords(m, buckets, hsMinBuckets)
	m.Store(hdr+hsBuckets, buckets)
	m.Store(hdr+hsNBuckets, hsMinBuckets)
	m.Store(hdr+hsSize, 0)
	m.Store(ptm.RootAddr(s.RootSlot), hdr)
}

func (s HashSet) hdr(m ptm.Mem) uint64 { return m.Load(ptm.RootAddr(s.RootSlot)) }

// Len returns the number of keys.
func (s HashSet) Len(m ptm.Mem) uint64 { return m.Load(s.hdr(m) + hsSize) }

// Buckets returns the current bucket count (for tests and ablations).
func (s HashSet) Buckets(m ptm.Mem) uint64 { return m.Load(s.hdr(m) + hsNBuckets) }

// hash mixes k with a Fibonacci multiplier; the bucket count is a power of
// two so the high bits are folded down.
func hsHash(k, nbuckets uint64) uint64 {
	h := k * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h & (nbuckets - 1)
}

// Contains reports whether k is in the set.
func (s HashSet) Contains(m ptm.Mem, k uint64) bool {
	hdr := s.hdr(m)
	buckets := m.Load(hdr + hsBuckets)
	n := m.Load(buckets + hsHash(k, m.Load(hdr+hsNBuckets)))
	for n != 0 {
		if m.Load(n) == k {
			return true
		}
		n = m.Load(n + 1)
	}
	return false
}

// Add inserts k, returning false if it was already present.
func (s HashSet) Add(m ptm.Mem, k uint64) bool {
	hdr := s.hdr(m)
	buckets := m.Load(hdr + hsBuckets)
	nb := m.Load(hdr + hsNBuckets)
	slot := buckets + hsHash(k, nb)
	for n := m.Load(slot); n != 0; n = m.Load(n + 1) {
		if m.Load(n) == k {
			return false
		}
	}
	node := alloc(m, 2)
	m.Store(node, k)
	m.Store(node+1, m.Load(slot))
	m.Store(slot, node)
	size := m.Load(hdr+hsSize) + 1
	m.Store(hdr+hsSize, size)
	if size > nb {
		s.resize(m, nb*2)
	}
	return true
}

// Remove deletes k, returning false if it was not present.
func (s HashSet) Remove(m ptm.Mem, k uint64) bool {
	hdr := s.hdr(m)
	buckets := m.Load(hdr + hsBuckets)
	nb := m.Load(hdr + hsNBuckets)
	slot := buckets + hsHash(k, nb)
	prev := uint64(0)
	n := m.Load(slot)
	for n != 0 {
		next := m.Load(n + 1)
		if m.Load(n) == k {
			if prev == 0 {
				m.Store(slot, next)
			} else {
				m.Store(prev+1, next)
			}
			m.Free(n)
			size := m.Load(hdr+hsSize) - 1
			m.Store(hdr+hsSize, size)
			if nb > hsMinBuckets && size < nb/4 {
				s.resize(m, nb/2)
			}
			return true
		}
		prev = n
		n = next
	}
	return false
}

// resize rehashes every key into a new bucket array of newNB buckets and
// frees the old array. It runs inside the caller's transaction, so a resize
// is atomic and durable like any other update.
func (s HashSet) resize(m ptm.Mem, newNB uint64) {
	hdr := s.hdr(m)
	oldBuckets := m.Load(hdr + hsBuckets)
	oldNB := m.Load(hdr + hsNBuckets)
	newBuckets := m.Alloc(newNB)
	if newBuckets == 0 {
		// Growing is optional: stay at the current size rather than
		// fail the user's operation.
		return
	}
	ptm.ZeroWords(m, newBuckets, newNB)
	for i := uint64(0); i < oldNB; i++ {
		n := m.Load(oldBuckets + i)
		for n != 0 {
			next := m.Load(n + 1)
			slot := newBuckets + hsHash(m.Load(n), newNB)
			m.Store(n+1, m.Load(slot))
			m.Store(slot, n)
			n = next
		}
	}
	m.Store(hdr+hsBuckets, newBuckets)
	m.Store(hdr+hsNBuckets, newNB)
	m.Free(oldBuckets)
}

// Keys returns all keys in unspecified order (for tests).
func (s HashSet) Keys(m ptm.Mem) []uint64 {
	hdr := s.hdr(m)
	buckets := m.Load(hdr + hsBuckets)
	nb := m.Load(hdr + hsNBuckets)
	var out []uint64
	for i := uint64(0); i < nb; i++ {
		for n := m.Load(buckets + i); n != 0; n = m.Load(n + 1) {
			out = append(out, m.Load(n))
		}
	}
	return out
}
