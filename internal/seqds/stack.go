package seqds

import "repro/internal/ptm"

// Stack is a persistent linked stack — the data structure used in the
// paper's Figures 2 and 3 to illustrate CX and Redo-PTM.
type Stack struct {
	RootSlot int
}

// Header layout: [top, size]. Node layout: [val, next].

// Init creates an empty stack.
func (s Stack) Init(m ptm.Mem) {
	hdr := alloc(m, 2)
	m.Store(hdr, 0)
	m.Store(hdr+1, 0)
	m.Store(ptm.RootAddr(s.RootSlot), hdr)
}

func (s Stack) hdr(m ptm.Mem) uint64 { return m.Load(ptm.RootAddr(s.RootSlot)) }

// Len returns the number of elements.
func (s Stack) Len(m ptm.Mem) uint64 { return m.Load(s.hdr(m) + 1) }

// Push adds v on top of the stack.
func (s Stack) Push(m ptm.Mem, v uint64) {
	hdr := s.hdr(m)
	n := alloc(m, 2)
	m.Store(n, v)
	m.Store(n+1, m.Load(hdr))
	m.Store(hdr, n)
	m.Store(hdr+1, m.Load(hdr+1)+1)
}

// Pop removes and returns the top element; ok is false on empty.
func (s Stack) Pop(m ptm.Mem) (v uint64, ok bool) {
	hdr := s.hdr(m)
	top := m.Load(hdr)
	if top == 0 {
		return 0, false
	}
	v = m.Load(top)
	m.Store(hdr, m.Load(top+1))
	m.Free(top)
	m.Store(hdr+1, m.Load(hdr+1)-1)
	return v, true
}

// Peek returns the top element without removing it; ok is false on empty.
func (s Stack) Peek(m ptm.Mem) (v uint64, ok bool) {
	top := m.Load(s.hdr(m))
	if top == 0 {
		return 0, false
	}
	return m.Load(top), true
}
