package seqds

import "repro/internal/ptm"

// SPS is the swap benchmark array (Fig. 4): a persistent array of 64-bit
// integers whose entries are exchanged pairwise by transactions.
type SPS struct {
	RootSlot int
}

// sps block layout: [len, data0, data1, ...]

// Init allocates the array with n entries, entry i initialized to i.
func (s SPS) Init(m ptm.Mem, n uint64) {
	s.InitEmpty(m, n)
	s.FillRange(m, 0, n)
}

// InitEmpty allocates the array with n zero entries. Combined with
// FillRange it lets large arrays be initialized in several transactions,
// bounding per-transaction write-set sizes.
func (s SPS) InitEmpty(m ptm.Mem, n uint64) {
	blk := alloc(m, n+1)
	m.Store(blk, n)
	m.Store(ptm.RootAddr(s.RootSlot), blk)
}

// FillRange sets entries [lo, hi) to their index values. On a BulkMem the
// range lands as aggregated chunk stores instead of one log record per word.
func (s SPS) FillRange(m ptm.Mem, lo, hi uint64) {
	blk := m.Load(ptm.RootAddr(s.RootSlot))
	var buf [64]uint64
	for i := lo; i < hi; {
		n := hi - i
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		for j := uint64(0); j < n; j++ {
			buf[j] = i + j
		}
		ptm.StoreWords(m, blk+1+i, buf[:n])
		i += n
	}
}

// Len returns the number of entries.
func (s SPS) Len(m ptm.Mem) uint64 {
	return m.Load(m.Load(ptm.RootAddr(s.RootSlot)))
}

// Get returns entry i.
func (s SPS) Get(m ptm.Mem, i uint64) uint64 {
	blk := m.Load(ptm.RootAddr(s.RootSlot))
	return m.Load(blk + 1 + i)
}

// Swap exchanges entries i and j, the paper's unit of work: two modified
// memory words per swap.
func (s SPS) Swap(m ptm.Mem, i, j uint64) {
	blk := m.Load(ptm.RootAddr(s.RootSlot))
	a, b := m.Load(blk+1+i), m.Load(blk+1+j)
	m.Store(blk+1+i, b)
	m.Store(blk+1+j, a)
}

// Sum returns the sum of all entries. Swaps preserve it, so it serves as a
// cheap consistency check after crashes.
func (s SPS) Sum(m ptm.Mem) uint64 {
	blk := m.Load(ptm.RootAddr(s.RootSlot))
	n := m.Load(blk)
	var sum uint64
	var buf [64]uint64
	for i := uint64(0); i < n; {
		k := n - i
		if k > uint64(len(buf)) {
			k = uint64(len(buf))
		}
		ptm.LoadWords(m, blk+1+i, buf[:k])
		for j := uint64(0); j < k; j++ {
			sum += buf[j]
		}
		i += k
	}
	return sum
}
