// Package seqds provides the sequential persistent data structures used by
// the paper's evaluation: the SPS swap array (Fig. 4), a linked-list based
// queue (Fig. 5), an ordered linked-list set, a red-black tree set and a
// resizable hash set (Fig. 6), plus a stack (the running example of the
// paper's illustrations).
//
// Every structure is written against ptm.Mem, the annotated load/store
// interface, with all internal references stored as region-relative word
// offsets. The same code therefore runs unchanged under every construction
// (CX-PTM, Redo-PTM and friends interpose the loads and stores; CX-PUC runs
// it with a direct, non-interposed Mem), which is the paper's notion of a
// sequential implementation handed to a universal construction.
//
// The structures keep their root reference in one of the persistent root
// slots (ptm.RootAddr); each type is a small descriptor naming its slot, so
// several structures coexist in the same heap — multi-object transactions in
// the examples mutate two structures in one closure.
package seqds

import "repro/internal/ptm"

// oom panics when a persistent allocation fails. Transactions in this
// repository treat heap exhaustion as a configuration error (the pools are
// sized by the benchmark/application), matching the paper's allocator, which
// has no overflow story either.
func oom() {
	panic("seqds: persistent heap exhausted")
}

// alloc allocates or panics.
func alloc(m ptm.Mem, words uint64) uint64 {
	a := m.Alloc(words)
	if a == 0 {
		oom()
	}
	return a
}
