package seqds

import (
	"testing"

	"repro/internal/ptm"
)

// FuzzRBTreeOps feeds arbitrary operation streams to the red-black tree and
// checks the full invariant set plus model agreement after every batch.
// Each input byte encodes one operation: low 7 bits the key, high bit
// selects add vs remove.
func FuzzRBTreeOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0x81, 0x82, 4, 5, 0x83})
	f.Add([]byte{0x80})
	f.Add([]byte{127, 0xff, 127, 0xff})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		m := ptm.NewFlatMem(1 << 18)
		tr := RBTree{RootSlot: 0}
		tr.Init(m)
		model := make(map[uint64]bool)
		for _, op := range ops {
			k := uint64(op & 0x7f)
			if op&0x80 == 0 {
				got := tr.Add(m, k)
				if got == model[k] {
					t.Fatalf("Add(%d) = %v with model %v", k, got, model[k])
				}
				model[k] = true
			} else {
				got := tr.Remove(m, k)
				if got != model[k] {
					t.Fatalf("Remove(%d) = %v with model %v", k, got, model[k])
				}
				delete(model, k)
			}
		}
		if err := tr.Validate(m); err != "" {
			t.Fatalf("invariant violated: %s (ops %v)", err, ops)
		}
		if int(tr.Len(m)) != len(model) {
			t.Fatalf("Len = %d, model %d", tr.Len(m), len(model))
		}
		for k := range model {
			if !tr.Contains(m, k) {
				t.Fatalf("key %d lost", k)
			}
		}
	})
}

// FuzzHashSetOps does the same for the resizable hash set, whose grow and
// shrink paths move every node.
func FuzzHashSetOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0x81, 0x85})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048]
		}
		m := ptm.NewFlatMem(1 << 18)
		s := HashSet{RootSlot: 0}
		s.Init(m)
		model := make(map[uint64]bool)
		for _, op := range ops {
			k := uint64(op & 0x7f)
			if op&0x80 == 0 {
				if s.Add(m, k) == model[k] {
					t.Fatalf("Add(%d) disagrees with model", k)
				}
				model[k] = true
			} else {
				if s.Remove(m, k) != model[k] {
					t.Fatalf("Remove(%d) disagrees with model", k)
				}
				delete(model, k)
			}
		}
		if int(s.Len(m)) != len(model) {
			t.Fatalf("Len = %d, model %d", s.Len(m), len(model))
		}
		for k := range model {
			if !s.Contains(m, k) {
				t.Fatalf("key %d lost across resizes", k)
			}
		}
	})
}
