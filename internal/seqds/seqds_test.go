package seqds

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ptm"
)

func mem() *ptm.FlatMem { return ptm.NewFlatMem(1 << 22) }

// set is the common interface of the three set implementations, letting the
// model-based tests run once per implementation.
type set interface {
	Init(m ptm.Mem)
	Add(m ptm.Mem, k uint64) bool
	Remove(m ptm.Mem, k uint64) bool
	Contains(m ptm.Mem, k uint64) bool
	Len(m ptm.Mem) uint64
	Keys(m ptm.Mem) []uint64
}

func sets() map[string]set {
	return map[string]set{
		"list": ListSet{RootSlot: 0},
		"tree": RBTree{RootSlot: 0},
		"hash": HashSet{RootSlot: 0},
	}
}

func TestSetBasics(t *testing.T) {
	for name, s := range sets() {
		t.Run(name, func(t *testing.T) {
			m := mem()
			s.Init(m)
			if s.Len(m) != 0 {
				t.Fatal("fresh set not empty")
			}
			if s.Contains(m, 42) {
				t.Fatal("fresh set contains 42")
			}
			if !s.Add(m, 42) {
				t.Fatal("Add(42) failed")
			}
			if s.Add(m, 42) {
				t.Fatal("duplicate Add(42) succeeded")
			}
			if !s.Contains(m, 42) {
				t.Fatal("Contains(42) false after Add")
			}
			if s.Len(m) != 1 {
				t.Fatalf("Len = %d, want 1", s.Len(m))
			}
			if !s.Remove(m, 42) {
				t.Fatal("Remove(42) failed")
			}
			if s.Remove(m, 42) {
				t.Fatal("double Remove(42) succeeded")
			}
			if s.Contains(m, 42) || s.Len(m) != 0 {
				t.Fatal("set not empty after Remove")
			}
		})
	}
}

func TestSetAgainstModel(t *testing.T) {
	for name, s := range sets() {
		t.Run(name, func(t *testing.T) {
			m := mem()
			s.Init(m)
			model := make(map[uint64]bool)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(500))
				switch rng.Intn(3) {
				case 0:
					if got, want := s.Add(m, k), !model[k]; got != want {
						t.Fatalf("op %d: Add(%d) = %v, want %v", i, k, got, want)
					}
					model[k] = true
				case 1:
					if got, want := s.Remove(m, k), model[k]; got != want {
						t.Fatalf("op %d: Remove(%d) = %v, want %v", i, k, got, want)
					}
					delete(model, k)
				case 2:
					if got, want := s.Contains(m, k), model[k]; got != want {
						t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, want)
					}
				}
			}
			if int(s.Len(m)) != len(model) {
				t.Fatalf("Len = %d, model has %d", s.Len(m), len(model))
			}
			keys := s.Keys(m)
			if len(keys) != len(model) {
				t.Fatalf("Keys() returned %d, model has %d", len(keys), len(model))
			}
			for _, k := range keys {
				if !model[k] {
					t.Fatalf("Keys() contains %d not in model", k)
				}
			}
		})
	}
}

func TestListSetKeysSorted(t *testing.T) {
	m := mem()
	s := ListSet{RootSlot: 0}
	s.Init(m)
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		s.Add(m, k)
	}
	keys := s.Keys(m)
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("list keys not sorted: %v", keys)
	}
}

func TestRBTreeInvariantsUnderChurn(t *testing.T) {
	m := mem()
	tr := RBTree{RootSlot: 0}
	tr.Init(m)
	rng := rand.New(rand.NewSource(3))
	live := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(800))
		if rng.Intn(2) == 0 {
			tr.Add(m, k)
			live[k] = true
		} else {
			tr.Remove(m, k)
			delete(live, k)
		}
		if i%500 == 0 {
			if err := tr.Validate(m); err != "" {
				t.Fatalf("op %d: %s", i, err)
			}
		}
	}
	if err := tr.Validate(m); err != "" {
		t.Fatal(err)
	}
	keys := tr.Keys(m)
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("tree keys not sorted")
	}
	if len(keys) != len(live) {
		t.Fatalf("tree has %d keys, model %d", len(keys), len(live))
	}
}

func TestRBTreeQuickInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		m := mem()
		tr := RBTree{RootSlot: 0}
		tr.Init(m)
		for _, op := range ops {
			k := uint64(op % 128)
			if op%2 == 0 {
				tr.Add(m, k)
			} else {
				tr.Remove(m, k)
			}
		}
		return tr.Validate(m) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestHashSetResizes(t *testing.T) {
	m := mem()
	s := HashSet{RootSlot: 0}
	s.Init(m)
	start := s.Buckets(m)
	for k := uint64(0); k < 1000; k++ {
		s.Add(m, k)
	}
	grown := s.Buckets(m)
	if grown <= start {
		t.Fatalf("buckets did not grow: %d -> %d", start, grown)
	}
	for k := uint64(0); k < 1000; k++ {
		if !s.Contains(m, k) {
			t.Fatalf("key %d lost across resize", k)
		}
	}
	for k := uint64(0); k < 1000; k++ {
		s.Remove(m, k)
	}
	if got := s.Buckets(m); got >= grown {
		t.Fatalf("buckets did not shrink: %d -> %d", grown, got)
	}
}

func TestHashSetMemoryReclaimed(t *testing.T) {
	m := mem()
	s := HashSet{RootSlot: 0}
	s.Init(m)
	base := m.InUseWords()
	for k := uint64(0); k < 5000; k++ {
		s.Add(m, k)
	}
	for k := uint64(0); k < 5000; k++ {
		s.Remove(m, k)
	}
	// Everything except the header/bucket floor must have been freed.
	if got := m.InUseWords(); got > base+4*hsMinBuckets {
		t.Fatalf("in-use words after churn = %d, want near %d", got, base)
	}
}

func TestQueueFIFO(t *testing.T) {
	m := mem()
	q := Queue{RootSlot: 0}
	q.Init(m)
	if _, ok := q.Dequeue(m); ok {
		t.Fatal("Dequeue on empty queue succeeded")
	}
	if _, ok := q.Peek(m); ok {
		t.Fatal("Peek on empty queue succeeded")
	}
	for i := uint64(1); i <= 100; i++ {
		q.Enqueue(m, i)
	}
	if q.Len(m) != 100 {
		t.Fatalf("Len = %d, want 100", q.Len(m))
	}
	if v, ok := q.Peek(m); !ok || v != 1 {
		t.Fatalf("Peek = %d,%v, want 1,true", v, ok)
	}
	for i := uint64(1); i <= 100; i++ {
		v, ok := q.Dequeue(m)
		if !ok || v != i {
			t.Fatalf("Dequeue = %d,%v, want %d,true", v, ok, i)
		}
	}
	if q.Len(m) != 0 {
		t.Fatalf("Len after drain = %d", q.Len(m))
	}
}

func TestQueueInterleaved(t *testing.T) {
	m := mem()
	q := Queue{RootSlot: 0}
	q.Init(m)
	var model []uint64
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		if rng.Intn(2) == 0 {
			v := rng.Uint64()
			q.Enqueue(m, v)
			model = append(model, v)
		} else {
			v, ok := q.Dequeue(m)
			if ok != (len(model) > 0) {
				t.Fatalf("op %d: Dequeue ok = %v, model len %d", i, ok, len(model))
			}
			if ok {
				if v != model[0] {
					t.Fatalf("op %d: Dequeue = %d, want %d", i, v, model[0])
				}
				model = model[1:]
			}
		}
	}
	items := q.Items(m)
	if len(items) != len(model) {
		t.Fatalf("Items len = %d, model %d", len(items), len(model))
	}
	for i := range model {
		if items[i] != model[i] {
			t.Fatalf("Items[%d] = %d, want %d", i, items[i], model[i])
		}
	}
}

func TestQueueNoLeak(t *testing.T) {
	m := mem()
	q := Queue{RootSlot: 0}
	q.Init(m)
	q.Enqueue(m, 1)
	q.Dequeue(m)
	base := m.InUseWords()
	for i := 0; i < 1000; i++ {
		q.Enqueue(m, uint64(i))
		q.Dequeue(m)
	}
	if got := m.InUseWords(); got != base {
		t.Fatalf("enq/deq churn leaked: %d -> %d words", base, got)
	}
}

func TestStackLIFO(t *testing.T) {
	m := mem()
	s := Stack{RootSlot: 0}
	s.Init(m)
	if _, ok := s.Pop(m); ok {
		t.Fatal("Pop on empty stack succeeded")
	}
	for i := uint64(1); i <= 50; i++ {
		s.Push(m, i)
	}
	if v, ok := s.Peek(m); !ok || v != 50 {
		t.Fatalf("Peek = %d,%v, want 50,true", v, ok)
	}
	for i := uint64(50); i >= 1; i-- {
		v, ok := s.Pop(m)
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if s.Len(m) != 0 {
		t.Fatal("stack not empty after draining")
	}
}

func TestSPS(t *testing.T) {
	m := mem()
	s := SPS{RootSlot: 0}
	s.Init(m, 100)
	if s.Len(m) != 100 {
		t.Fatalf("Len = %d, want 100", s.Len(m))
	}
	wantSum := uint64(99 * 100 / 2)
	if got := s.Sum(m); got != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
	s.Swap(m, 3, 97)
	if s.Get(m, 3) != 97 || s.Get(m, 97) != 3 {
		t.Fatalf("Swap failed: a[3]=%d a[97]=%d", s.Get(m, 3), s.Get(m, 97))
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		s.Swap(m, uint64(rng.Intn(100)), uint64(rng.Intn(100)))
	}
	if got := s.Sum(m); got != wantSum {
		t.Fatalf("Sum after swaps = %d, want %d (swap must preserve sum)", got, wantSum)
	}
}

func TestMultipleStructuresShareHeap(t *testing.T) {
	m := mem()
	l := ListSet{RootSlot: 0}
	q := Queue{RootSlot: 1}
	tr := RBTree{RootSlot: 2}
	l.Init(m)
	q.Init(m)
	tr.Init(m)
	for k := uint64(0); k < 200; k++ {
		l.Add(m, k)
		q.Enqueue(m, k)
		tr.Add(m, k*2)
	}
	if l.Len(m) != 200 || q.Len(m) != 200 || tr.Len(m) != 200 {
		t.Fatalf("lens: %d %d %d", l.Len(m), q.Len(m), tr.Len(m))
	}
	for k := uint64(0); k < 200; k++ {
		if !l.Contains(m, k) || !tr.Contains(m, k*2) {
			t.Fatalf("key %d missing after interleaved use", k)
		}
	}
	if err := tr.Validate(m); err != "" {
		t.Fatal(err)
	}
}

func TestOOMPanics(t *testing.T) {
	m := ptm.NewFlatMem(600) // tiny heap
	s := ListSet{RootSlot: 0}
	s.Init(m)
	defer func() {
		if recover() == nil {
			t.Error("Add on exhausted heap did not panic")
		}
	}()
	for k := uint64(0); k < 10000; k++ {
		s.Add(m, k)
	}
}

func BenchmarkRBTreeAddRemove(b *testing.B) {
	m := mem()
	tr := RBTree{RootSlot: 0}
	tr.Init(m)
	for k := uint64(0); k < 10000; k++ {
		tr.Add(m, k*2)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(rng.Intn(20000))
		if tr.Remove(m, k) {
			tr.Add(m, k)
		}
	}
}

func BenchmarkHashSetAddRemove(b *testing.B) {
	m := mem()
	s := HashSet{RootSlot: 0}
	s.Init(m)
	for k := uint64(0); k < 10000; k++ {
		s.Add(m, k)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(rng.Intn(10000))
		if s.Remove(m, k) {
			s.Add(m, k)
		}
	}
}
