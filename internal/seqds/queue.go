package seqds

import "repro/internal/ptm"

// Queue is the linked-list based persistent queue of Fig. 5: enqueue at the
// tail, dequeue at the head, each operation allocating or freeing one node.
// All operations touch either the head or the tail word plus allocator
// metadata, which is what gives RedoOpt-PTM its flush-aggregation advantage
// in the paper's queue benchmark.
type Queue struct {
	RootSlot int
}

// Header layout: [head, tail, size]. Node layout: [val, next]. The queue
// keeps a sentinel head node (Michael-Scott style) so head is never 0.
const (
	qHead = 0
	qTail = 1
	qSize = 2
)

// Init creates an empty queue.
func (q Queue) Init(m ptm.Mem) {
	hdr := alloc(m, 3)
	sentinel := alloc(m, 2)
	m.Store(sentinel, 0)
	m.Store(sentinel+1, 0)
	m.Store(hdr+qHead, sentinel)
	m.Store(hdr+qTail, sentinel)
	m.Store(hdr+qSize, 0)
	m.Store(ptm.RootAddr(q.RootSlot), hdr)
}

func (q Queue) hdr(m ptm.Mem) uint64 { return m.Load(ptm.RootAddr(q.RootSlot)) }

// Len returns the number of elements.
func (q Queue) Len(m ptm.Mem) uint64 { return m.Load(q.hdr(m) + qSize) }

// Enqueue appends v at the tail.
func (q Queue) Enqueue(m ptm.Mem, v uint64) {
	hdr := q.hdr(m)
	n := alloc(m, 2)
	m.Store(n, v)
	m.Store(n+1, 0)
	tail := m.Load(hdr + qTail)
	m.Store(tail+1, n)
	m.Store(hdr+qTail, n)
	m.Store(hdr+qSize, m.Load(hdr+qSize)+1)
}

// Dequeue removes and returns the head element; ok is false on empty.
func (q Queue) Dequeue(m ptm.Mem) (v uint64, ok bool) {
	hdr := q.hdr(m)
	sentinel := m.Load(hdr + qHead)
	first := m.Load(sentinel + 1)
	if first == 0 {
		return 0, false
	}
	v = m.Load(first)
	// The first real node becomes the new sentinel; its value word is
	// cleared so the queue never retains dequeued payloads.
	m.Store(hdr+qHead, first)
	m.Store(first, 0)
	m.Free(sentinel)
	m.Store(hdr+qSize, m.Load(hdr+qSize)-1)
	return v, true
}

// Peek returns the head element without removing it; ok is false on empty.
func (q Queue) Peek(m ptm.Mem) (v uint64, ok bool) {
	hdr := q.hdr(m)
	first := m.Load(m.Load(hdr+qHead) + 1)
	if first == 0 {
		return 0, false
	}
	return m.Load(first), true
}

// Items returns the queue contents from head to tail (for tests).
func (q Queue) Items(m ptm.Mem) []uint64 {
	var out []uint64
	cur := m.Load(m.Load(q.hdr(m)+qHead) + 1)
	for cur != 0 {
		out = append(out, m.Load(cur))
		cur = m.Load(cur + 1)
	}
	return out
}
