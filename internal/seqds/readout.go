package seqds

import "repro/internal/ptm"

// Reader is the read-only half of a construction: every engine in this
// module (redo, cx, psim, onefile, romulus, pmdk, onll) exposes this method.
type Reader interface {
	Read(tid int, fn func(ptm.Mem) uint64) uint64
}

// ReadSlice extracts a variable-length word sequence from persistent state
// through single-word read-only transactions: one to learn the length, then
// one per element. This is the pattern the PTM contract requires — closure
// results must flow out through the return value, never through writes to
// captured variables, because closures may be re-executed (by helper
// threads, or by the same thread on an optimistic-read retry).
//
// The extraction is not atomic: concurrent updates between the length read
// and the element reads can skew the result. Use it from quiescent state
// (recovery checks, single-threaded verification), or fall back to an
// engine's byte-result channel (redo.ReadWithBytes + ptm.EmitBytes) when a
// consistent bulk snapshot is needed under concurrency.
func ReadSlice(e Reader, tid int, get func(ptm.Mem) []uint64) []uint64 {
	n := e.Read(tid, func(m ptm.Mem) uint64 { return uint64(len(get(m))) })
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		idx := i
		out = append(out, e.Read(tid, func(m ptm.Mem) uint64 { return get(m)[idx] }))
	}
	return out
}
