package seqds

import "repro/internal/ptm"

// RBTree is the balanced red-black tree set of Fig. 6 (middle). An update
// transaction on a strictly balanced tree touches many words (rotations and
// recolorings along the path), which is why the paper observes negative
// scalability for 100%-update tree workloads: the physical logs are large
// and cannot be aggregated.
type RBTree struct {
	RootSlot int
}

// Header layout: [rootNode, nilNode, size].
// Node layout: [key, left, right, parent, color].
const (
	rbRoot = 0
	rbNil  = 1
	rbSize = 2

	nKey    = 0
	nLeft   = 1
	nRight  = 2
	nParent = 3
	nColor  = 4

	black = 0
	red   = 1
)

// Init creates an empty tree. A nil sentinel node (black, as in CLRS) keeps
// the delete fixup free of special cases.
func (t RBTree) Init(m ptm.Mem) {
	hdr := alloc(m, 3)
	nilNode := alloc(m, 5)
	m.Store(nilNode+nKey, 0)
	m.Store(nilNode+nLeft, nilNode)
	m.Store(nilNode+nRight, nilNode)
	m.Store(nilNode+nParent, nilNode)
	m.Store(nilNode+nColor, black)
	m.Store(hdr+rbRoot, nilNode)
	m.Store(hdr+rbNil, nilNode)
	m.Store(hdr+rbSize, 0)
	m.Store(ptm.RootAddr(t.RootSlot), hdr)
}

func (t RBTree) hdr(m ptm.Mem) uint64 { return m.Load(ptm.RootAddr(t.RootSlot)) }

// Len returns the number of keys.
func (t RBTree) Len(m ptm.Mem) uint64 { return m.Load(t.hdr(m) + rbSize) }

// Contains reports whether k is in the tree.
func (t RBTree) Contains(m ptm.Mem, k uint64) bool {
	hdr := t.hdr(m)
	nilN := m.Load(hdr + rbNil)
	x := m.Load(hdr + rbRoot)
	for x != nilN {
		xk := m.Load(x + nKey)
		switch {
		case k == xk:
			return true
		case k < xk:
			x = m.Load(x + nLeft)
		default:
			x = m.Load(x + nRight)
		}
	}
	return false
}

func (t RBTree) leftRotate(m ptm.Mem, hdr, x uint64) {
	nilN := m.Load(hdr + rbNil)
	y := m.Load(x + nRight)
	yl := m.Load(y + nLeft)
	m.Store(x+nRight, yl)
	if yl != nilN {
		m.Store(yl+nParent, x)
	}
	xp := m.Load(x + nParent)
	m.Store(y+nParent, xp)
	if xp == nilN {
		m.Store(hdr+rbRoot, y)
	} else if m.Load(xp+nLeft) == x {
		m.Store(xp+nLeft, y)
	} else {
		m.Store(xp+nRight, y)
	}
	m.Store(y+nLeft, x)
	m.Store(x+nParent, y)
}

func (t RBTree) rightRotate(m ptm.Mem, hdr, x uint64) {
	nilN := m.Load(hdr + rbNil)
	y := m.Load(x + nLeft)
	yr := m.Load(y + nRight)
	m.Store(x+nLeft, yr)
	if yr != nilN {
		m.Store(yr+nParent, x)
	}
	xp := m.Load(x + nParent)
	m.Store(y+nParent, xp)
	if xp == nilN {
		m.Store(hdr+rbRoot, y)
	} else if m.Load(xp+nRight) == x {
		m.Store(xp+nRight, y)
	} else {
		m.Store(xp+nLeft, y)
	}
	m.Store(y+nRight, x)
	m.Store(x+nParent, y)
}

// Add inserts k, returning false if it was already present.
func (t RBTree) Add(m ptm.Mem, k uint64) bool {
	hdr := t.hdr(m)
	nilN := m.Load(hdr + rbNil)
	y := nilN
	x := m.Load(hdr + rbRoot)
	for x != nilN {
		y = x
		xk := m.Load(x + nKey)
		if k == xk {
			return false
		}
		if k < xk {
			x = m.Load(x + nLeft)
		} else {
			x = m.Load(x + nRight)
		}
	}
	z := alloc(m, 5)
	m.Store(z+nKey, k)
	m.Store(z+nLeft, nilN)
	m.Store(z+nRight, nilN)
	m.Store(z+nParent, y)
	m.Store(z+nColor, red)
	if y == nilN {
		m.Store(hdr+rbRoot, z)
	} else if k < m.Load(y+nKey) {
		m.Store(y+nLeft, z)
	} else {
		m.Store(y+nRight, z)
	}
	t.insertFixup(m, hdr, z)
	m.Store(hdr+rbSize, m.Load(hdr+rbSize)+1)
	return true
}

func (t RBTree) insertFixup(m ptm.Mem, hdr, z uint64) {
	for {
		zp := m.Load(z + nParent)
		if m.Load(zp+nColor) != red {
			break
		}
		zpp := m.Load(zp + nParent)
		if zp == m.Load(zpp+nLeft) {
			y := m.Load(zpp + nRight) // uncle
			if m.Load(y+nColor) == red {
				m.Store(zp+nColor, black)
				m.Store(y+nColor, black)
				m.Store(zpp+nColor, red)
				z = zpp
				continue
			}
			if z == m.Load(zp+nRight) {
				z = zp
				t.leftRotate(m, hdr, z)
				zp = m.Load(z + nParent)
				zpp = m.Load(zp + nParent)
			}
			m.Store(zp+nColor, black)
			m.Store(zpp+nColor, red)
			t.rightRotate(m, hdr, zpp)
		} else {
			y := m.Load(zpp + nLeft) // uncle
			if m.Load(y+nColor) == red {
				m.Store(zp+nColor, black)
				m.Store(y+nColor, black)
				m.Store(zpp+nColor, red)
				z = zpp
				continue
			}
			if z == m.Load(zp+nLeft) {
				z = zp
				t.rightRotate(m, hdr, z)
				zp = m.Load(z + nParent)
				zpp = m.Load(zp + nParent)
			}
			m.Store(zp+nColor, black)
			m.Store(zpp+nColor, red)
			t.leftRotate(m, hdr, zpp)
		}
	}
	m.Store(m.Load(hdr+rbRoot)+nColor, black)
}

// transplant replaces subtree u with subtree v.
func (t RBTree) transplant(m ptm.Mem, hdr, u, v uint64) {
	nilN := m.Load(hdr + rbNil)
	up := m.Load(u + nParent)
	if up == nilN {
		m.Store(hdr+rbRoot, v)
	} else if u == m.Load(up+nLeft) {
		m.Store(up+nLeft, v)
	} else {
		m.Store(up+nRight, v)
	}
	m.Store(v+nParent, up)
}

func (t RBTree) minimum(m ptm.Mem, hdr, x uint64) uint64 {
	nilN := m.Load(hdr + rbNil)
	for m.Load(x+nLeft) != nilN {
		x = m.Load(x + nLeft)
	}
	return x
}

// Remove deletes k, returning false if it was not present.
func (t RBTree) Remove(m ptm.Mem, k uint64) bool {
	hdr := t.hdr(m)
	nilN := m.Load(hdr + rbNil)
	z := m.Load(hdr + rbRoot)
	for z != nilN {
		zk := m.Load(z + nKey)
		if k == zk {
			break
		}
		if k < zk {
			z = m.Load(z + nLeft)
		} else {
			z = m.Load(z + nRight)
		}
	}
	if z == nilN {
		return false
	}
	y := z
	yOrigColor := m.Load(y + nColor)
	var x uint64
	if m.Load(z+nLeft) == nilN {
		x = m.Load(z + nRight)
		t.transplant(m, hdr, z, x)
	} else if m.Load(z+nRight) == nilN {
		x = m.Load(z + nLeft)
		t.transplant(m, hdr, z, x)
	} else {
		y = t.minimum(m, hdr, m.Load(z+nRight))
		yOrigColor = m.Load(y + nColor)
		x = m.Load(y + nRight)
		if m.Load(y+nParent) == z {
			m.Store(x+nParent, y) // meaningful even when x is the sentinel
		} else {
			t.transplant(m, hdr, y, x)
			zr := m.Load(z + nRight)
			m.Store(y+nRight, zr)
			m.Store(zr+nParent, y)
		}
		t.transplant(m, hdr, z, y)
		zl := m.Load(z + nLeft)
		m.Store(y+nLeft, zl)
		m.Store(zl+nParent, y)
		m.Store(y+nColor, m.Load(z+nColor))
	}
	m.Free(z)
	if yOrigColor == black {
		t.deleteFixup(m, hdr, x)
	}
	m.Store(hdr+rbSize, m.Load(hdr+rbSize)-1)
	return true
}

func (t RBTree) deleteFixup(m ptm.Mem, hdr, x uint64) {
	for x != m.Load(hdr+rbRoot) && m.Load(x+nColor) == black {
		xp := m.Load(x + nParent)
		if x == m.Load(xp+nLeft) {
			w := m.Load(xp + nRight)
			if m.Load(w+nColor) == red {
				m.Store(w+nColor, black)
				m.Store(xp+nColor, red)
				t.leftRotate(m, hdr, xp)
				xp = m.Load(x + nParent)
				w = m.Load(xp + nRight)
			}
			if m.Load(m.Load(w+nLeft)+nColor) == black && m.Load(m.Load(w+nRight)+nColor) == black {
				m.Store(w+nColor, red)
				x = xp
			} else {
				if m.Load(m.Load(w+nRight)+nColor) == black {
					m.Store(m.Load(w+nLeft)+nColor, black)
					m.Store(w+nColor, red)
					t.rightRotate(m, hdr, w)
					xp = m.Load(x + nParent)
					w = m.Load(xp + nRight)
				}
				m.Store(w+nColor, m.Load(xp+nColor))
				m.Store(xp+nColor, black)
				m.Store(m.Load(w+nRight)+nColor, black)
				t.leftRotate(m, hdr, xp)
				x = m.Load(hdr + rbRoot)
			}
		} else {
			w := m.Load(xp + nLeft)
			if m.Load(w+nColor) == red {
				m.Store(w+nColor, black)
				m.Store(xp+nColor, red)
				t.rightRotate(m, hdr, xp)
				xp = m.Load(x + nParent)
				w = m.Load(xp + nLeft)
			}
			if m.Load(m.Load(w+nRight)+nColor) == black && m.Load(m.Load(w+nLeft)+nColor) == black {
				m.Store(w+nColor, red)
				x = xp
			} else {
				if m.Load(m.Load(w+nLeft)+nColor) == black {
					m.Store(m.Load(w+nRight)+nColor, black)
					m.Store(w+nColor, red)
					t.leftRotate(m, hdr, w)
					xp = m.Load(x + nParent)
					w = m.Load(xp + nLeft)
				}
				m.Store(w+nColor, m.Load(xp+nColor))
				m.Store(xp+nColor, black)
				m.Store(m.Load(w+nLeft)+nColor, black)
				t.rightRotate(m, hdr, xp)
				x = m.Load(hdr + rbRoot)
			}
		}
	}
	m.Store(x+nColor, black)
}

// Keys returns all keys in ascending order (for tests).
func (t RBTree) Keys(m ptm.Mem) []uint64 {
	hdr := t.hdr(m)
	nilN := m.Load(hdr + rbNil)
	var out []uint64
	var walk func(x uint64)
	walk = func(x uint64) {
		if x == nilN {
			return
		}
		walk(m.Load(x + nLeft))
		out = append(out, m.Load(x+nKey))
		walk(m.Load(x + nRight))
	}
	walk(m.Load(hdr + rbRoot))
	return out
}

// Validate checks the red-black invariants: binary-search order, red nodes
// have black children, every root-to-leaf path has the same black height,
// and the root and sentinel are black. It returns a description of the first
// violation, or "" if the tree is valid. Intended for tests.
func (t RBTree) Validate(m ptm.Mem) string {
	hdr := t.hdr(m)
	nilN := m.Load(hdr + rbNil)
	root := m.Load(hdr + rbRoot)
	if m.Load(nilN+nColor) != black {
		return "sentinel is not black"
	}
	if root != nilN && m.Load(root+nColor) != black {
		return "root is not black"
	}
	count := uint64(0)
	var check func(x uint64, lo, hi uint64, hasLo, hasHi bool) (int, string)
	check = func(x uint64, lo, hi uint64, hasLo, hasHi bool) (int, string) {
		if x == nilN {
			return 1, ""
		}
		count++
		k := m.Load(x + nKey)
		if hasLo && k <= lo {
			return 0, "BST order violated (low)"
		}
		if hasHi && k >= hi {
			return 0, "BST order violated (high)"
		}
		c := m.Load(x + nColor)
		l, r := m.Load(x+nLeft), m.Load(x+nRight)
		if c == red && (m.Load(l+nColor) == red || m.Load(r+nColor) == red) {
			return 0, "red node with red child"
		}
		if l != nilN && m.Load(l+nParent) != x {
			return 0, "broken parent link (left)"
		}
		if r != nilN && m.Load(r+nParent) != x {
			return 0, "broken parent link (right)"
		}
		bhl, err := check(l, lo, k, hasLo, true)
		if err != "" {
			return 0, err
		}
		bhr, err := check(r, k, hi, true, hasHi)
		if err != "" {
			return 0, err
		}
		if bhl != bhr {
			return 0, "unequal black heights"
		}
		if c == black {
			return bhl + 1, ""
		}
		return bhl, ""
	}
	if _, err := check(root, 0, 0, false, false); err != "" {
		return err
	}
	if count != m.Load(hdr+rbSize) {
		return "size mismatch"
	}
	return ""
}
