package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/handmade"
	"repro/internal/onll"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// FigConfig is shared by all figure generators.
type FigConfig struct {
	Engines []Engine
	Threads []int
	Dur     time.Duration // per data point
	Lat     pmem.LatencyModel
	Out     io.Writer
}

// rng is a per-thread splitmix64, avoiding the global rand lock.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed*0x9e3779b97f4a7c15 + 1} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// nextPow2 rounds n up to a power of two.
func nextPow2(n uint64) uint64 {
	p := uint64(1)
	for p < n {
		p *= 2
	}
	return p
}

// wordsForKeys sizes a replica region for a structure of the given keys,
// with headroom for allocator rounding, bucket arrays and churn.
func wordsForKeys(keys uint64) uint64 {
	w := nextPow2(keys*16 + 1<<14)
	if w < 1<<15 {
		w = 1 << 15
	}
	return w
}

// Fig4SPS regenerates Figure 4: the persistent SPS integer microbenchmark.
// Each transaction performs `swaps` random swaps in an array of arraySize
// 64-bit integers (two modified words per swap).
func Fig4SPS(cfg FigConfig, arraySize uint64, swapsList []int) {
	for _, swaps := range swapsList {
		PrintHeader(cfg.Out, fmt.Sprintf("Fig 4 — SPS, %d swap(s) per tx, array=%d", swaps, arraySize))
		for _, eng := range cfg.Engines {
			for _, threads := range cfg.Threads {
				// The allocator rounds the array block up to a
				// power of two; the region needs that plus the
				// allocator metadata and slack.
				words := nextPow2(nextPow2(arraySize+2)*2 + 1<<14)
				p, pool := eng.New(threads, words, cfg.Lat, nil)
				sps := seqds.SPS{RootSlot: 0}
				p.Update(0, func(m ptm.Mem) uint64 { sps.InitEmpty(m, arraySize); return 0 })
				const initBatch = 512
				for lo := uint64(0); lo < arraySize; lo += initBatch {
					hi := lo + initBatch
					if hi > arraySize {
						hi = arraySize
					}
					lo := lo
					p.Update(0, func(m ptm.Mem) uint64 { sps.FillRange(m, lo, hi); return 0 })
				}
				pool.ResetStats()
				rngs := makeRNGs(threads)
				swapsPerTx := swaps
				res := RunThroughput(pool, threads, cfg.Dur, func(tid, i int) {
					r := rngs[tid]
					pairs := make([][2]uint64, swapsPerTx)
					for k := range pairs {
						pairs[k] = [2]uint64{r.intn(arraySize), r.intn(arraySize)}
					}
					p.Update(tid, func(m ptm.Mem) uint64 {
						for _, pr := range pairs {
							sps.Swap(m, pr[0], pr[1])
						}
						return 0
					})
				})
				res.Engine = eng.Name
				PrintResult(cfg.Out, res)
			}
		}
	}
}

// Fig5Queue regenerates Figure 5: a persistent linked-list queue pre-filled
// with `prefill` elements, every thread alternating an enqueue transaction
// and a dequeue transaction. The hand-made FHMP and NormOpt queues run the
// same workload with their volatile allocator.
func Fig5Queue(cfg FigConfig, prefill int) {
	PrintHeader(cfg.Out, fmt.Sprintf("Fig 5 — queue pre-filled with %d elements (enq+deq pairs)", prefill))
	for _, eng := range cfg.Engines {
		for _, threads := range cfg.Threads {
			p, pool := eng.New(threads, 1<<20, cfg.Lat, nil)
			q := seqds.Queue{RootSlot: 0}
			p.Update(0, func(m ptm.Mem) uint64 { q.Init(m); return 0 })
			for i := 0; i < prefill; i += 100 {
				base := uint64(i)
				p.Update(0, func(m ptm.Mem) uint64 {
					for j := uint64(0); j < 100 && base+j < uint64(prefill); j++ {
						q.Enqueue(m, base+j)
					}
					return 0
				})
			}
			res := RunThroughput(pool, threads, cfg.Dur, func(tid, i int) {
				if i%2 == 0 {
					p.Update(tid, func(m ptm.Mem) uint64 { q.Enqueue(m, uint64(i)); return 0 })
				} else {
					p.Update(tid, func(m ptm.Mem) uint64 {
						v, _ := q.Dequeue(m)
						return v
					})
				}
			})
			res.Engine = eng.Name
			PrintResult(cfg.Out, res)
		}
	}
	// Hand-made comparators.
	for _, mk := range []func(*pmem.Region, int) handmadeQueue{
		func(r *pmem.Region, t int) handmadeQueue { return handmade.NewFHMP(r, t) },
		func(r *pmem.Region, t int) handmadeQueue { return handmade.NewNormOpt(r, t) },
	} {
		for _, threads := range cfg.Threads {
			pool := pmem.New(pmem.Config{
				Mode: pmem.Direct, RegionWords: 1 << 22, Regions: 1, Latency: cfg.Lat,
			})
			q := mk(pool.Region(0), threads)
			for i := 0; i < prefill; i++ {
				q.Enqueue(0, uint64(i))
			}
			res := RunThroughput(pool, threads, cfg.Dur, func(tid, i int) {
				if i%2 == 0 {
					q.Enqueue(tid, uint64(i))
				} else {
					q.Dequeue(tid)
				}
			})
			res.Engine = q.Name()
			PrintResult(cfg.Out, res)
		}
	}
}

type handmadeQueue interface {
	Enqueue(tid int, v uint64)
	Dequeue(tid int) (uint64, bool)
	Name() string
}

// setDS abstracts the three set implementations of Fig. 6.
type setDS interface {
	Init(m ptm.Mem)
	Add(m ptm.Mem, k uint64) bool
	Remove(m ptm.Mem, k uint64) bool
	Contains(m ptm.Mem, k uint64) bool
}

// SetByName returns the Fig. 6 data structure named list, tree or hash.
func SetByName(name string) (setDS, error) {
	switch name {
	case "list":
		return seqds.ListSet{RootSlot: 0}, nil
	case "tree":
		return seqds.RBTree{RootSlot: 0}, nil
	case "hash":
		return seqds.HashSet{RootSlot: 0}, nil
	}
	return nil, fmt.Errorf("bench: unknown data structure %q", name)
}

// fillSet inserts keys 0..keys-1 in batched transactions.
func fillSet(p ptm.PTM, s setDS, keys uint64) {
	const batch = 512
	for base := uint64(0); base < keys; base += batch {
		lo, hi := base, base+batch
		if hi > keys {
			hi = keys
		}
		p.Update(0, func(m ptm.Mem) uint64 {
			for k := lo; k < hi; k++ {
				s.Add(m, k)
			}
			return 0
		})
	}
}

// Fig6Set regenerates one panel of Figure 6: a set pre-filled with `keys`
// keys under workloads with the given update percentages. An update removes
// a random present key and re-inserts it (two update transactions); a
// lookup issues two contains transactions — exactly the paper's procedure.
func Fig6Set(cfg FigConfig, ds string, keys uint64, updatePcts []int) {
	s, err := SetByName(ds)
	if err != nil {
		panic(err)
	}
	for _, pct := range updatePcts {
		PrintHeader(cfg.Out, fmt.Sprintf("Fig 6 — %s set, %d keys, %d%% updates", ds, keys, pct))
		for _, eng := range cfg.Engines {
			for _, threads := range cfg.Threads {
				p, pool := eng.New(threads, wordsForKeys(keys), cfg.Lat, nil)
				p.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
				fillSet(p, s, keys)
				rngs := makeRNGs(threads)
				pool.ResetStats()
				res := RunThroughput(pool, threads, cfg.Dur, func(tid, i int) {
					r := rngs[tid]
					if r.intn(100) < uint64(pct) {
						k := r.intn(keys)
						removed := p.Update(tid, func(m ptm.Mem) uint64 {
							if s.Remove(m, k) {
								return 1
							}
							return 0
						})
						if removed == 1 {
							p.Update(tid, func(m ptm.Mem) uint64 {
								s.Add(m, k)
								return 0
							})
						}
					} else {
						for n := 0; n < 2; n++ {
							k := r.intn(keys)
							p.Read(tid, func(m ptm.Mem) uint64 {
								if s.Contains(m, k) {
									return 1
								}
								return 0
							})
						}
					}
				})
				res.Engine = eng.Name
				PrintResult(cfg.Out, res)
			}
		}
	}
}

// PropsTable prints the §2 PTM comparison table from each implementation's
// self-description.
func PropsTable(out io.Writer) {
	fmt.Fprintf(out, "\n# §2 — PTM properties table\n")
	fmt.Fprintf(out, "%-16s %-12s %-10s %-10s %-8s\n", "engine", "log", "progress", "pfence/tx", "replicas")
	for _, eng := range AllEngines() {
		p, _ := eng.New(2, 1<<15, pmem.LatencyModel{}, nil)
		pr := p.Properties()
		fmt.Fprintf(out, "%-16s %-12s %-10s %-10s %-8s\n",
			p.Name(), pr.Log, pr.Progress, pr.FencesPerTx, pr.Replicas)
	}
	// ONLL has a registered-operation API rather than ptm.PTM (it cannot
	// run dynamic transactions — the very limitation the paper contrasts
	// CX against), so its row is produced directly.
	op := onll.New(
		pmem.New(pmem.Config{RegionWords: 1 << 10, Regions: 1}),
		onll.Config{Threads: 1, Ops: map[uint16]onll.OpFunc{}},
	)
	pr := op.Properties()
	fmt.Fprintf(out, "%-16s %-12s %-10s %-10s %-8s\n",
		op.Name(), pr.Log, pr.Progress, pr.FencesPerTx, pr.Replicas)
}

func makeRNGs(threads int) []*rng {
	out := make([]*rng, threads)
	for i := range out {
		out[i] = newRNG(uint64(i) + 12345)
	}
	return out
}
