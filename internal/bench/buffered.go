package bench

import (
	"runtime"

	"repro/internal/pmem"
	"repro/internal/redodb"
)

// Buffered-durability sweep: the tracked benchmark behind BENCH_pr8.json.
// The "sync" baseline pays the full synchronous price per Put — a combining
// round, the dirty-line flush, a fence, and the header publish, every
// operation. The "buffered" cells run db_bench-style group commit at batch
// depth N: each worker accumulates N puts in a WriteBatch, applies it as one
// transaction into the in-flight epoch, and Syncs — sealing the epoch with
// ONE fence for the whole group. Depth therefore amortizes both the
// per-transaction software cost (one combining round per N puts) and the
// persistence cost (fences/put falls as ~2/N); the trajectory pins >= 5x at
// depth 64 with a bounded p99 (the batch-closing put absorbs the seal, so
// the tail is the group-commit latency, not a lost write).

// BufferedEntries measures the fillrandom baseline plus one buffered cell
// per batch depth on an unsharded RedoDB.
func BufferedEntries(cfg DBConfig, threads int, depths []int) []BenchEntry {
	out := []BenchEntry{bufferedCell(cfg, threads, 0)}
	for _, d := range depths {
		// Each cell leaves a dead ~50 MB pool behind; reclaim it before the
		// next measurement so GC pauses don't land inside the timed window.
		runtime.GC()
		out = append(out, bufferedCell(cfg, threads, d))
	}
	return out
}

// bufferedCell measures one fillrandom cell: depth 0 is the synchronous
// baseline, depth >= 1 runs buffered with a Sync every depth ops per worker.
func bufferedCell(cfg DBConfig, threads, depth int) BenchEntry {
	buffered := depth > 0
	regions := threads + 1
	if buffered {
		regions = threads + 2 // curComb + persister pin + a free replica
	}
	pool := pmem.New(pmem.Config{
		Mode: pmem.Direct, RegionWords: cfg.Words, Regions: regions, Latency: cfg.Lat,
	})
	db := redodb.Open(pool, redodb.Options{
		Threads: threads, Buffered: buffered, PersistEvery: -1,
	})
	sessions := make([]*redodb.Session, threads)
	for i := range sessions {
		sessions[i] = db.Session(i)
	}
	keys := make([][]byte, cfg.Keys)
	for i := range keys {
		keys[i] = dbKey(uint64(i))
	}
	rngs := makeRNGs(threads)
	// Warm to steady state: every key present so the measured window sees
	// overwrites, and (buffered) the batch/seal path exercised at the
	// measured depth so the log and dirty-list scratch is grown before
	// measurement.
	if buffered {
		wb := &redodb.WriteBatch{}
		for i := uint64(0); i < cfg.Keys; i++ {
			wb.Put(keys[i], dbValue)
			if wb.Len() >= depth {
				sessions[0].Write(wb)
				sessions[0].Sync()
				wb.Clear()
			}
		}
		if wb.Len() > 0 {
			sessions[0].Write(wb)
			sessions[0].Sync()
		}
	} else {
		for i := uint64(0); i < cfg.Keys; i++ {
			sessions[0].Put(keys[i], dbValue)
		}
	}
	pool.ResetStats()
	var res Result
	if buffered {
		batches := make([]*redodb.WriteBatch, threads)
		for i := range batches {
			batches[i] = &redodb.WriteBatch{}
		}
		res = RunThroughputLat(pool, threads, cfg.Dur, func(tid, i int) {
			b := batches[tid]
			b.Put(keys[rngs[tid].intn(cfg.Keys)], dbValue)
			if b.Len() >= depth {
				sessions[tid].Write(b)
				sessions[tid].Sync()
				b.Clear()
			}
		})
	} else {
		res = RunThroughputLat(pool, threads, cfg.Dur, func(tid, i int) {
			sessions[tid].Put(keys[rngs[tid].intn(cfg.Keys)], dbValue)
		})
	}
	path := "sync"
	if buffered {
		path = "buffered"
	}
	return BenchEntry{
		Workload:     "fillrandom",
		Engine:       "RedoDB",
		Shards:       1,
		Threads:      threads,
		Path:         path,
		Depth:        depth,
		OpsPerSec:    res.OpsPerSec(),
		PWBsPerTx:    res.PWBsPerOp(),
		PFencesPerTx: res.FencesPerOp(),
		P50Ns:        res.Lat.P50Ns,
		P99Ns:        res.Lat.P99Ns,
	}
}
