package bench

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lincheck"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// recordHistory runs a short concurrent workload against p and records a
// timestamped history suitable for the linearizability checker. The clock
// is a shared atomic counter: if op A's Return tick precedes op B's Call
// tick, A really completed before B was invoked.
func recordCounterHistory(p ptm.PTM, threads, perThread int) []lincheck.Op {
	var clock atomic.Int64
	addr := ptm.RootAddr(0)
	histories := make([][]lincheck.Op, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				var op lincheck.Op
				op.Thread = tid
				if i%3 == 2 {
					op.Kind = "get"
					op.Call = clock.Add(1)
					op.Result = p.Read(tid, func(m ptm.Mem) uint64 {
						return m.Load(addr)
					})
					op.Return = clock.Add(1)
				} else {
					op.Kind = "inc"
					op.Call = clock.Add(1)
					op.Result = p.Update(tid, func(m ptm.Mem) uint64 {
						v := m.Load(addr) + 1
						m.Store(addr, v)
						return v
					})
					op.Return = clock.Add(1)
				}
				histories[tid] = append(histories[tid], op)
			}
		}(tid)
	}
	wg.Wait()
	var all []lincheck.Op
	for _, h := range histories {
		all = append(all, h...)
	}
	return all
}

func recordSetHistory(p ptm.PTM, threads, perThread int) []lincheck.Op {
	var clock atomic.Int64
	s := seqds.ListSet{RootSlot: 0}
	p.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	histories := make([][]lincheck.Op, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := newRNG(uint64(tid) + 1)
			for i := 0; i < perThread; i++ {
				k := r.intn(3) // tiny key space maximizes conflicts
				var op lincheck.Op
				op.Thread = tid
				op.Arg = k
				switch r.intn(3) {
				case 0:
					op.Kind = "add"
					op.Call = clock.Add(1)
					op.Result = p.Update(tid, func(m ptm.Mem) uint64 {
						if s.Add(m, k) {
							return 1
						}
						return 0
					})
				case 1:
					op.Kind = "remove"
					op.Call = clock.Add(1)
					op.Result = p.Update(tid, func(m ptm.Mem) uint64 {
						if s.Remove(m, k) {
							return 1
						}
						return 0
					})
				default:
					op.Kind = "contains"
					op.Call = clock.Add(1)
					op.Result = p.Read(tid, func(m ptm.Mem) uint64 {
						if s.Contains(m, k) {
							return 1
						}
						return 0
					})
				}
				op.Return = clock.Add(1)
				histories[tid] = append(histories[tid], op)
			}
		}(tid)
	}
	wg.Wait()
	var all []lincheck.Op
	for _, h := range histories {
		all = append(all, h...)
	}
	return all
}

// TestAllEnginesLinearizableCounter checks recorded concurrent counter
// histories against the sequential specification for every engine.
func TestAllEnginesLinearizableCounter(t *testing.T) {
	for _, eng := range AllEngines() {
		t.Run(eng.Name, func(t *testing.T) {
			for round := 0; round < 5; round++ {
				p, _ := eng.New(3, 1<<15, pmem.LatencyModel{}, nil)
				h := recordCounterHistory(p, 3, 5)
				if !lincheck.Check(lincheck.CounterModel{}, h) {
					t.Fatalf("round %d: non-linearizable history: %+v", round, h)
				}
			}
		})
	}
}

// TestAllEnginesLinearizableSet does the same for a contended tiny set.
func TestAllEnginesLinearizableSet(t *testing.T) {
	for _, eng := range AllEngines() {
		t.Run(eng.Name, func(t *testing.T) {
			for round := 0; round < 5; round++ {
				p, _ := eng.New(3, 1<<16, pmem.LatencyModel{}, nil)
				h := recordSetHistory(p, 3, 5)
				if !lincheck.Check(lincheck.SetModel{}, h) {
					t.Fatalf("round %d: non-linearizable history: %+v", round, h)
				}
			}
		})
	}
}
