package bench

import (
	"fmt"

	"repro/internal/pmem"
	"repro/internal/redodb"
)

// Detectable-operation overhead sweep: the tracked benchmark behind
// BENCH_pr7.json. A detectable Put writes its dedup receipt (digest word
// then seq commit word) inside the same redo-log transaction as the
// operation, so its cost over a plain Put is a fixed number of extra logged
// words — the trajectory pins that at <= 2 extra pwbs per transaction, with
// the p99 tail tracked alongside. Each worker acts as one client
// (client = tid+1) issuing strictly increasing seqs and acking its window
// every ackEvery ops, so the receipt ring stays at its initial capacity and
// the measurement reflects steady state rather than ring growth.

const detectAckEvery = 64

// DetectEntries measures fillrandom with plain Put vs PutDetectable on an
// unsharded RedoDB.
func DetectEntries(cfg DBConfig, threads int) []BenchEntry {
	var out []BenchEntry
	for _, path := range []string{"plain", "detect"} {
		out = append(out, detectCell(cfg, path, threads))
	}
	return out
}

// detectCell measures one (path, fillrandom) cell on a fresh RedoDB.
func detectCell(cfg DBConfig, path string, threads int) BenchEntry {
	pool := pmem.New(pmem.Config{
		Mode: pmem.Direct, RegionWords: cfg.Words, Regions: threads + 1, Latency: cfg.Lat,
	})
	db := redodb.Open(pool, redodb.Options{Threads: threads})
	sessions := make([]*redodb.Session, threads)
	for i := range sessions {
		sessions[i] = db.Session(i)
	}
	keys := make([][]byte, cfg.Keys)
	for i := range keys {
		keys[i] = dbKey(uint64(i))
	}
	rngs := makeRNGs(threads)
	seqs := make([]uint64, threads*8) // padded: one cache line apart
	// Warm to steady state before measuring: every key present (so the
	// measured window sees overwrites, not bucket growth) and each client
	// past its receipt-ring growth and first ack cycles — otherwise the
	// plain-vs-detect delta jitters with how much one-time warmup cost the
	// time budget happens to amortize.
	for i := uint64(0); i < cfg.Keys; i++ {
		sessions[0].Put(keys[i], dbValue)
	}
	if path == "detect" {
		for tid := 0; tid < threads; tid++ {
			client := uint64(tid + 1)
			for k := 0; k < 2*detectAckEvery; k++ {
				seqs[tid*8]++
				seq := seqs[tid*8]
				sessions[tid].PutDetectable(client, seq, keys[uint64(k)%uint64(len(keys))], dbValue)
				if seq%detectAckEvery == 0 {
					sessions[tid].AckApplied(client, seq)
				}
			}
		}
	}
	pool.ResetStats()
	var res Result
	switch path {
	case "plain":
		res = RunThroughputLat(pool, threads, cfg.Dur, func(tid, i int) {
			sessions[tid].Put(keys[rngs[tid].intn(cfg.Keys)], dbValue)
		})
	case "detect":
		res = RunThroughputLat(pool, threads, cfg.Dur, func(tid, i int) {
			client := uint64(tid + 1)
			seqs[tid*8]++
			seq := seqs[tid*8]
			sessions[tid].PutDetectable(client, seq, keys[rngs[tid].intn(cfg.Keys)], dbValue)
			if seq%detectAckEvery == 0 {
				sessions[tid].AckApplied(client, seq)
			}
		})
	default:
		panic(fmt.Sprintf("bench: unknown detect path %q", path))
	}
	return BenchEntry{
		Workload:     "fillrandom",
		Engine:       "RedoDB",
		Shards:       1,
		Threads:      threads,
		Path:         path,
		OpsPerSec:    res.OpsPerSec(),
		PWBsPerTx:    res.PWBsPerOp(),
		PFencesPerTx: res.FencesPerOp(),
		P50Ns:        res.Lat.P50Ns,
		P99Ns:        res.Lat.P99Ns,
	}
}
