package bench

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// FuzzEngineCrashPoint fuzzes (engine, power-failure instant) pairs across
// every PTM in the repository with one durable-linearizability oracle. The
// seed corpus covers each engine; `go test -fuzz=FuzzEngineCrashPoint
// ./internal/bench` explores arbitrary crash instants.
func FuzzEngineCrashPoint(f *testing.F) {
	n := len(AllEngines())
	for i := 0; i < n; i++ {
		f.Add(uint8(i), int64(13))
		f.Add(uint8(i), int64(217))
	}
	f.Fuzz(func(t *testing.T, engIdx uint8, failPoint int64) {
		engines := AllEngines()
		eng := engines[int(engIdx)%len(engines)]
		if failPoint < 1 || failPoint > 50000 {
			return
		}
		regions := 2 // covers Redo (N+1), OneFile, PMDK, Romulus and CX (2N) at N=1
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 13, Regions: regions})
		set := seqds.ListSet{RootSlot: 0}
		const n = 12
		completed := 0
		func() {
			defer func() {
				if r := recover(); r != nil && r != pmem.ErrSimulatedPowerFailure {
					panic(r)
				}
				pool.InjectFailure(-1)
			}()
			p := eng.NewOnPool(1, pool)
			p.Update(0, func(m ptm.Mem) uint64 { set.Init(m); return 0 })
			pool.InjectFailure(failPoint)
			for k := 0; k < n; k++ {
				p.Update(0, func(m ptm.Mem) uint64 {
					set.Add(m, uint64(k)+1)
					return 0
				})
				completed++
			}
		}()
		pool.Crash(pmem.CrashConservative, nil)
		p := eng.NewOnPool(1, pool)
		keys := seqds.ReadSlice(p, 0, set.Keys)
		if len(keys) < completed || len(keys) > n {
			t.Fatalf("%s fail=%d: recovered %d keys, completed %d",
				eng.Name, failPoint, len(keys), completed)
		}
		for i, k := range keys {
			if k != uint64(i)+1 {
				t.Fatalf("%s fail=%d: recovered state not a prefix at %d",
					eng.Name, failPoint, i)
			}
		}
	})
}
