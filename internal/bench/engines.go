// Package bench is the benchmark harness that regenerates the paper's
// evaluation (Figs. 4–9 and Table 1): engine factories for every PTM,
// workload generators, thread-sweep runners and table printers. The cmd
// binaries (ptmbench, dbbench) and the root bench_test.go are thin wrappers
// over this package.
package bench

import (
	"fmt"

	"repro/internal/core/cx"
	"repro/internal/core/redo"
	"repro/internal/onefile"
	"repro/internal/pmdk"
	"repro/internal/pmem"
	"repro/internal/psim"
	"repro/internal/ptm"
	"repro/internal/romulus"
)

// Engine is a named PTM factory. New creates a fresh instance over a fresh
// pool sized regionWords per replica; the replica count follows each
// construction's bound (2N for CX, N+1 for Redo, 1+log for the others).
type Engine struct {
	Name string
	New  func(threads int, regionWords uint64, lat pmem.LatencyModel, prof *ptm.Profile) (ptm.PTM, *pmem.Pool)
	// NewOnPool instantiates (or recovers) the engine over an existing
	// pool — the crash checker's recovery path.
	NewOnPool func(threads int, pool *pmem.Pool) ptm.PTM
}

// AllEngines returns the paper's full comparison set, fastest-to-slowest in
// the paper's headline results.
func AllEngines() []Engine {
	return []Engine{
		RedoEngine(redo.Opt),
		RedoEngine(redo.Timed),
		RedoEngine(redo.Base),
		CXEngine(true),
		CXEngine(false),
		OneFileEngine(),
		RomulusEngine(),
		PSimEngine(),
		PMDKEngine(),
	}
}

// EngineByName resolves one engine, matching the names used in the paper's
// plots (case-sensitive).
func EngineByName(name string) (Engine, error) {
	for _, e := range AllEngines() {
		if e.Name == name {
			return e, nil
		}
	}
	return Engine{}, fmt.Errorf("bench: unknown engine %q", name)
}

// RedoEngine builds a Redo-PTM variant factory.
func RedoEngine(v redo.Variant) Engine {
	return Engine{
		Name: v.String(),
		New: func(threads int, words uint64, lat pmem.LatencyModel, prof *ptm.Profile) (ptm.PTM, *pmem.Pool) {
			pool := pmem.New(pmem.Config{
				Mode:        pmem.Direct,
				RegionWords: words,
				Regions:     threads + 1,
				Latency:     lat,
			})
			return redo.New(pool, redo.Config{Threads: threads, Variant: v, Profile: prof}), pool
		},
		NewOnPool: func(threads int, pool *pmem.Pool) ptm.PTM {
			return redo.New(pool, redo.Config{Threads: threads, Variant: v})
		},
	}
}

// CXEngine builds a CX factory: interpose=true is CX-PTM, false is CX-PUC.
func CXEngine(interpose bool) Engine {
	name := "CX-PUC"
	if interpose {
		name = "CX-PTM"
	}
	return Engine{
		Name: name,
		New: func(threads int, words uint64, lat pmem.LatencyModel, prof *ptm.Profile) (ptm.PTM, *pmem.Pool) {
			regions := 2 * threads
			if regions < 2 {
				regions = 2
			}
			pool := pmem.New(pmem.Config{
				Mode:        pmem.Direct,
				RegionWords: words,
				Regions:     regions,
				Latency:     lat,
			})
			return cx.New(pool, cx.Config{Threads: threads, Interpose: interpose, Profile: prof}), pool
		},
		NewOnPool: func(threads int, pool *pmem.Pool) ptm.PTM {
			return cx.New(pool, cx.Config{Threads: threads, Interpose: interpose})
		},
	}
}

// OneFileEngine builds the OneFile baseline factory.
func OneFileEngine() Engine {
	return Engine{
		Name: "OneFile",
		New: func(threads int, words uint64, lat pmem.LatencyModel, prof *ptm.Profile) (ptm.PTM, *pmem.Pool) {
			pool := pmem.New(pmem.Config{
				Mode:        pmem.Direct,
				RegionWords: words,
				Regions:     2,
				Latency:     lat,
			})
			return onefile.New(pool, onefile.Config{Threads: threads, Profile: prof}), pool
		},
		NewOnPool: func(threads int, pool *pmem.Pool) ptm.PTM {
			return onefile.New(pool, onefile.Config{Threads: threads})
		},
	}
}

// RomulusEngine builds the RomulusLR baseline factory (blocking updates,
// wait-free reads, 4 fences, 2 replicas).
func RomulusEngine() Engine {
	return Engine{
		Name: "RomulusLR",
		New: func(threads int, words uint64, lat pmem.LatencyModel, prof *ptm.Profile) (ptm.PTM, *pmem.Pool) {
			pool := pmem.New(pmem.Config{
				Mode:        pmem.Direct,
				RegionWords: words,
				Regions:     2,
				Latency:     lat,
			})
			return romulus.New(pool, romulus.Config{Threads: threads, Profile: prof}), pool
		},
		NewOnPool: func(threads int, pool *pmem.Pool) ptm.PTM {
			return romulus.New(pool, romulus.Config{Threads: threads})
		},
	}
}

// PSimEngine builds the P-Sim-style copy-on-write PUC factory, the "other"
// wait-free UC family of the paper's §1 taxonomy.
func PSimEngine() Engine {
	return Engine{
		Name: "PSim-CoW",
		New: func(threads int, words uint64, lat pmem.LatencyModel, prof *ptm.Profile) (ptm.PTM, *pmem.Pool) {
			pool := pmem.New(pmem.Config{
				Mode:        pmem.Direct,
				RegionWords: words,
				Regions:     2,
				Latency:     lat,
			})
			return psim.New(pool, psim.Config{Threads: threads, Profile: prof}), pool
		},
		NewOnPool: func(threads int, pool *pmem.Pool) ptm.PTM {
			return psim.New(pool, psim.Config{Threads: threads})
		},
	}
}

// PMDKEngine builds the PMDK baseline factory.
func PMDKEngine() Engine {
	return Engine{
		Name: "PMDK",
		New: func(threads int, words uint64, lat pmem.LatencyModel, prof *ptm.Profile) (ptm.PTM, *pmem.Pool) {
			pool := pmem.New(pmem.Config{
				Mode:        pmem.Direct,
				RegionWords: words,
				Regions:     2,
				Latency:     lat,
			})
			return pmdk.New(pool, pmdk.Config{Threads: threads, Profile: prof}), pool
		},
		NewOnPool: func(threads int, pool *pmem.Pool) ptm.PTM {
			return pmdk.New(pool, pmdk.Config{Threads: threads})
		},
	}
}
