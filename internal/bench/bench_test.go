package bench

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/pmem"
)

// tiny returns a minimal configuration that exercises every code path of
// the harness quickly.
func tiny(out io.Writer) FigConfig {
	return FigConfig{
		Engines: AllEngines(),
		Threads: []int{1, 2},
		Dur:     20 * time.Millisecond,
		Out:     out,
	}
}

func TestEngineByName(t *testing.T) {
	for _, want := range []string{
		"RedoOpt-PTM", "RedoTimed-PTM", "Redo-PTM", "CX-PTM", "CX-PUC", "OneFile", "PMDK",
	} {
		e, err := EngineByName(want)
		if err != nil {
			t.Fatalf("EngineByName(%q): %v", want, err)
		}
		p, _ := e.New(1, 1<<15, pmem.LatencyModel{}, nil)
		if p.Name() != want {
			t.Errorf("engine %q reports name %q", want, p.Name())
		}
	}
	if _, err := EngineByName("nope"); err == nil {
		t.Error("EngineByName(nope) did not fail")
	}
}

func TestSetByName(t *testing.T) {
	for _, name := range []string{"list", "tree", "hash"} {
		if _, err := SetByName(name); err != nil {
			t.Errorf("SetByName(%s): %v", name, err)
		}
	}
	if _, err := SetByName("skiplist"); err == nil {
		t.Error("SetByName(skiplist) did not fail")
	}
}

func TestFig4Smoke(t *testing.T) {
	var sb strings.Builder
	Fig4SPS(tiny(&sb), 2048, []int{1})
	out := sb.String()
	for _, eng := range []string{"RedoOpt-PTM", "CX-PUC", "OneFile", "PMDK"} {
		if !strings.Contains(out, eng) {
			t.Errorf("fig4 output missing engine %s", eng)
		}
	}
}

func TestFig5Smoke(t *testing.T) {
	var sb strings.Builder
	Fig5Queue(tiny(&sb), 100)
	out := sb.String()
	for _, eng := range []string{"FHMP", "NormOpt", "RedoOpt-PTM"} {
		if !strings.Contains(out, eng) {
			t.Errorf("fig5 output missing %s", eng)
		}
	}
}

func TestFig6Smoke(t *testing.T) {
	var sb strings.Builder
	cfg := tiny(&sb)
	cfg.Engines = []Engine{RedoEngine(0), PMDKEngine()}
	for _, ds := range []string{"list", "tree", "hash"} {
		Fig6Set(cfg, ds, 256, []int{10})
	}
	if !strings.Contains(sb.String(), "tree set") {
		t.Error("fig6 output missing tree panel")
	}
}

func TestTable1Smoke(t *testing.T) {
	var sb strings.Builder
	cfg := tiny(&sb)
	Table1(&sb, 256, []int{2}, cfg.Dur, cfg)
	out := sb.String()
	if !strings.Contains(out, "updateTX") || !strings.Contains(out, "sleep%") {
		t.Errorf("table1 output malformed:\n%s", out)
	}
}

func TestPropsTableSmoke(t *testing.T) {
	var sb strings.Builder
	PropsTable(&sb)
	out := sb.String()
	for _, want := range []string{"wait-free", "blocking", "v-physical", "2N", "N+1"} {
		if !strings.Contains(out, want) {
			t.Errorf("props table missing %q", want)
		}
	}
}

func TestDBFiguresSmoke(t *testing.T) {
	var sb strings.Builder
	cfg := DBConfig{
		Keys:    512,
		Threads: []int{1, 2},
		Dur:     20 * time.Millisecond,
		Words:   1 << 17,
		Out:     &sb,
	}
	Fig7(cfg)
	Fig8(cfg)
	Fig9(cfg)
	out := sb.String()
	for _, want := range []string{"readrandom", "readwhilewriting", "overwrite", "fillrandom", "recovery", "RedoDB", "RocksDB-sim"} {
		if !strings.Contains(out, want) {
			t.Errorf("db figures output missing %q", want)
		}
	}
}

func TestRunThroughputCounts(t *testing.T) {
	pool := pmem.New(pmem.Config{RegionWords: 1 << 10, Regions: 1})
	res := RunThroughput(pool, 4, 30*time.Millisecond, func(tid, i int) {})
	if res.Ops == 0 {
		t.Fatal("RunThroughput counted no ops")
	}
	if res.Threads != 4 {
		t.Fatalf("Threads = %d", res.Threads)
	}
	if res.OpsPerSec() <= 0 {
		t.Fatal("OpsPerSec <= 0")
	}
}
