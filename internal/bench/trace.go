package bench

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// TraceResult is one traced engine run: the captured event trace, the phase
// latency histograms, and the dynamic ordering checker's verdict on it.
type TraceResult struct {
	Engine     string
	Ops        int
	Trace      obs.Trace
	Lat        *obs.LatencySet
	Violations []obs.Violation
}

// TraceRun drives a bounded, single-threaded list-set workload on the named
// engine with event tracing attached, then re-opens the engine over the
// same pool so the trace also covers a full recovery pass. It returns the
// trace, the op/commit/recovery latency histograms (collected through
// ptm.Profile.Lat), and the CheckOrdering verdict. Single-threaded runs use
// the checker's strict header rule.
func TraceRun(engine string, ops int) (*TraceResult, error) {
	if ops <= 0 {
		ops = 64
	}
	e, err := EngineByName(engine)
	if err != nil {
		return nil, err
	}
	lat := &obs.LatencySet{}
	prof := &ptm.Profile{Lat: lat}
	p, pool := e.New(1, wordsForKeys(128), pmem.LatencyModel{}, prof)
	set := seqds.ListSet{RootSlot: 0}
	p.Update(0, func(m ptm.Mem) uint64 { set.Init(m); return 0 })

	// Attach the tracer only after format/init so the bounded ring holds
	// the workload and the recovery pass, not the bulk formatting stores.
	// That is sound for CheckOrdering: lines never stored inside the trace
	// carry no flush/fence obligations.
	size := ops * 2048
	if size < 1<<16 {
		size = 1 << 16
	}
	tr := obs.NewTracer(size)
	pool.SetTracer(tr)

	for i := 0; i < ops; i++ {
		k := uint64(i%64) + 1
		p.Update(0, func(m ptm.Mem) uint64 {
			if set.Add(m, k) {
				return 1
			}
			return 0
		})
		if i%2 == 1 {
			p.Update(0, func(m ptm.Mem) uint64 {
				if set.Remove(m, k) {
					return 1
				}
				return 0
			})
		}
	}

	// Re-open the engine over the live pool: the constructor replays its
	// recovery protocol (adopt or roll the persisted image) under tracing,
	// which is exactly the path crash consistency depends on.
	recStart := time.Now()
	p2 := e.NewOnPool(1, pool)
	lat.Recovery.Observe(time.Since(recStart))
	live := p2.Read(0, func(m ptm.Mem) uint64 {
		n := uint64(0)
		for k := uint64(1); k <= 64; k++ {
			if set.Contains(m, k) {
				n++
			}
		}
		return n
	})
	// The last iteration touching each key decides whether it survives:
	// even iterations leave it present, odd ones remove it again.
	finals := make(map[uint64]bool)
	for i := 0; i < ops; i++ {
		finals[uint64(i%64)+1] = i%2 == 0
	}
	want := uint64(0)
	for _, present := range finals {
		if present {
			want++
		}
	}
	if live != want {
		return nil, fmt.Errorf("bench: %s recovered %d keys, want %d", engine, live, want)
	}

	res := &TraceResult{Engine: engine, Ops: ops, Trace: tr.Snapshot(), Lat: lat}
	res.Violations, err = obs.CheckOrdering(res.Trace, obs.CheckOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: checking %s trace: %w", engine, err)
	}
	return res, nil
}
