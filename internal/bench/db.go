package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/pmem"
	"repro/internal/redodb"
	"repro/internal/rockssim"
)

// KV abstracts the two key-value engines of Figs. 7–9.
type KV interface {
	Name() string
	Put(tid int, key, val []byte)
	Get(tid int, key []byte) ([]byte, bool)
	Count(tid int) uint64
	NVMBytes() uint64
	VolatileBytes() uint64
}

// DBConfig parameterizes the db_bench-style runs: 16-byte keys and 100-byte
// values over `Keys` distinct keys, as in the paper.
type DBConfig struct {
	Keys    uint64
	Threads []int
	Dur     time.Duration
	Lat     pmem.LatencyModel
	Words   uint64 // region words for each engine's pool
	Out     io.Writer
}

// redoKV adapts RedoDB.
type redoKV struct {
	db       *redodb.DB
	pool     *pmem.Pool
	sessions []*redodb.Session
}

// NewRedoKV creates a RedoDB instance sized for cfg.
func NewRedoKV(cfg DBConfig, maxThreads int) KV {
	pool := pmem.New(pmem.Config{
		Mode: pmem.Direct, RegionWords: cfg.Words, Regions: maxThreads + 1, Latency: cfg.Lat,
	})
	db := redodb.Open(pool, redodb.Options{Threads: maxThreads})
	kv := &redoKV{db: db, pool: pool, sessions: make([]*redodb.Session, maxThreads)}
	for i := range kv.sessions {
		kv.sessions[i] = db.Session(i)
	}
	return kv
}

func (k *redoKV) Name() string                 { return "RedoDB" }
func (k *redoKV) Put(tid int, key, val []byte) { k.sessions[tid].Put(key, val) }
func (k *redoKV) Get(tid int, key []byte) ([]byte, bool) {
	return k.sessions[tid].Get(key)
}
func (k *redoKV) Count(tid int) uint64  { return k.sessions[tid].Len() }
func (k *redoKV) NVMBytes() uint64      { return k.db.NVMUsedBytes() }
func (k *redoKV) VolatileBytes() uint64 { return k.db.Engine().VolatileBytes() }

// rocksKV adapts RocksDB-sim.
type rocksKV struct {
	db   *rockssim.DB
	pool *pmem.Pool
}

// NewRocksKV creates a RocksDB-sim instance sized for cfg. When a latency
// model is active, the fsync device barrier (~4µs on Optane ext4) is
// modelled too.
func NewRocksKV(cfg DBConfig) KV {
	pool := pmem.New(pmem.Config{
		Mode: pmem.Direct, RegionWords: cfg.Words, Regions: 3, Latency: cfg.Lat,
	})
	opts := rockssim.Options{}
	if cfg.Lat.PWB > 0 {
		opts.SyncLatency = 4 * time.Microsecond
	}
	return &rocksKV{db: rockssim.Open(pool, opts), pool: pool}
}

func (k *rocksKV) Name() string                 { return "RocksDB-sim" }
func (k *rocksKV) Put(tid int, key, val []byte) { k.db.Put(key, val) }
func (k *rocksKV) Get(tid int, key []byte) ([]byte, bool) {
	return k.db.Get(key)
}
func (k *rocksKV) Count(tid int) uint64  { return uint64(k.db.Len()) }
func (k *rocksKV) NVMBytes() uint64      { return k.db.UsedNVMBytes() }
func (k *rocksKV) VolatileBytes() uint64 { return k.db.VolatileBytes() }

func (k *redoKV) srcOf() StatSource  { return k.pool }
func (k *rocksKV) srcOf() StatSource { return k.pool }

// pooled lets the runners reach the underlying stat source (a pool, or a
// pool group for the sharded engine).
type pooled interface{ srcOf() StatSource }

// dbKey renders db_bench's 16-byte keys.
func dbKey(i uint64) []byte { return []byte(fmt.Sprintf("%016d", i)) }

var dbValue = make([]byte, 100)

func init() {
	for i := range dbValue {
		dbValue[i] = byte('a' + i%26)
	}
}

// fill loads the database with cfg.Keys sequentially-named keys (single
// threaded, like db_bench's fill phases before read benchmarks).
func fill(kv KV, keys uint64) {
	for i := uint64(0); i < keys; i++ {
		kv.Put(0, dbKey(i), dbValue)
	}
}

// Fig7 regenerates Figure 7: readrandom, readwhilewriting and overwrite.
func Fig7(cfg DBConfig) {
	for _, workload := range []string{"readrandom", "readwhilewriting", "overwrite"} {
		PrintHeader(cfg.Out, fmt.Sprintf("Fig 7 — %s, %d keys", workload, cfg.Keys))
		for _, mk := range []func() KV{
			func() KV { return NewRocksKV(cfg) },
			func() KV { return NewRedoKV(cfg, maxOf(cfg.Threads)+1) },
		} {
			for _, threads := range cfg.Threads {
				kv := mk()
				fill(kv, cfg.Keys)
				pool := kv.(pooled).srcOf()
				pool.ResetStats()
				rngs := makeRNGs(threads + 1)
				var res Result
				switch workload {
				case "readrandom":
					res = RunThroughput(pool, threads, cfg.Dur, func(tid, i int) {
						kv.Get(tid, dbKey(rngs[tid].intn(cfg.Keys)))
					})
				case "readwhilewriting":
					// One extra thread continuously overwrites.
					stop := make(chan struct{})
					writerDone := make(chan struct{})
					wtid := threads
					go func() {
						defer close(writerDone)
						for {
							select {
							case <-stop:
								return
							default:
								kv.Put(wtid, dbKey(rngs[wtid].intn(cfg.Keys)), dbValue)
							}
						}
					}()
					res = RunThroughput(pool, threads, cfg.Dur, func(tid, i int) {
						kv.Get(tid, dbKey(rngs[tid].intn(cfg.Keys)))
					})
					close(stop)
					<-writerDone
				case "overwrite":
					res = RunThroughput(pool, threads, cfg.Dur, func(tid, i int) {
						kv.Put(tid, dbKey(rngs[tid].intn(cfg.Keys)), dbValue)
					})
				}
				res.Engine = kv.Name()
				PrintResult(cfg.Out, res)
			}
		}
	}
}

// Fig8 regenerates Figure 8: volatile and non-volatile memory usage of
// fillrandom, and the recovery time after a simulated failure (reopening
// the pool and executing the first transaction, which for RedoDB triggers
// the replica copy).
func Fig8(cfg DBConfig) {
	fmt.Fprintf(cfg.Out, "\n# Fig 8 — fillrandom memory usage and recovery, %d keys\n", cfg.Keys)
	fmt.Fprintf(cfg.Out, "%-14s %16s %16s %16s\n", "engine", "volatile(MB)", "nvmm(MB)", "recovery")

	// RocksDB-sim.
	rpool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: cfg.Words, Regions: 3, Latency: cfg.Lat})
	rdb := rockssim.Open(rpool, rockssim.Options{})
	rngs := makeRNGs(1)
	for i := uint64(0); i < cfg.Keys; i++ {
		rdb.Put(dbKey(rngs[0].intn(cfg.Keys)), dbValue)
	}
	rNVM := rdb.UsedNVMBytes()
	t0 := time.Now()
	rdb2 := rockssim.Open(rpool, rockssim.Options{})
	rdb2.Put(dbKey(0), dbValue)
	rRec := time.Since(t0)
	fmt.Fprintf(cfg.Out, "%-14s %16.2f %16.2f %16s\n", rdb.Name(),
		float64(rdb2.VolatileBytes())/1e6, float64(rNVM)/1e6, rRec)

	// RedoDB.
	threads := maxOf(cfg.Threads) + 1
	dpool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: cfg.Words, Regions: threads + 1, Latency: cfg.Lat})
	ddb := redodb.Open(dpool, redodb.Options{Threads: threads})
	s := ddb.Session(0)
	for i := uint64(0); i < cfg.Keys; i++ {
		s.Put(dbKey(rngs[0].intn(cfg.Keys)), dbValue)
	}
	nvm := ddb.NVMTotalBytes()
	vol := ddb.Engine().VolatileBytes()
	t0 = time.Now()
	ddb2 := redodb.Open(dpool, redodb.Options{Threads: threads})
	ddb2.Session(0).Put(dbKey(0), dbValue)
	dRec := time.Since(t0)
	fmt.Fprintf(cfg.Out, "%-14s %16.2f %16.2f %16s\n", "RedoDB",
		float64(vol)/1e6, float64(nvm)/1e6, dRec)
}

// Fig9 regenerates Figure 9: fillrandom throughput (left) and the number of
// pwb (clwb) instructions it issues (right).
func Fig9(cfg DBConfig) {
	PrintHeader(cfg.Out, fmt.Sprintf("Fig 9 — fillrandom, %d keys", cfg.Keys))
	for _, mk := range []func() KV{
		func() KV { return NewRocksKV(cfg) },
		func() KV { return NewRedoKV(cfg, maxOf(cfg.Threads)) },
	} {
		for _, threads := range cfg.Threads {
			kv := mk()
			pool := kv.(pooled).srcOf()
			pool.ResetStats()
			rngs := makeRNGs(threads)
			res := RunThroughput(pool, threads, cfg.Dur, func(tid, i int) {
				kv.Put(tid, dbKey(rngs[tid].intn(cfg.Keys)), dbValue)
			})
			res.Engine = kv.Name()
			PrintResult(cfg.Out, res)
		}
	}
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ReopenRedo simulates the Fig. 8 recovery measurement on an existing
// RedoDB: a fresh engine is constructed over the same pool (null recovery)
// and the first update transaction — which rebuilds a replica by copy — is
// executed.
func ReopenRedo(kv KV) {
	r, ok := kv.(*redoKV)
	if !ok {
		panic("bench: ReopenRedo needs a RedoDB instance")
	}
	db := redodb.Open(r.pool, redodb.Options{Threads: len(r.sessions)})
	db.Session(0).Put(dbKey(0), dbValue)
}
