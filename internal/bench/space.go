package bench

import (
	"repro/internal/pmem"
	"repro/internal/redodb"
)

// Space sweep: the tracked benchmark behind BENCH_pr10.json, the repo's
// Fig-8-style space figure. Each cell fills a fresh RedoDB with cfg.Keys
// distinct keys at one payload size under one allocator — the arena
// allocator ("arena") or the legacy power-of-two baseline ("legacy") — and
// records bytes of NVMM per key plus the allocator's fragmentation
// breakdown. The interesting number is the 1 KiB ratio: a 1 KiB value needs
// 129 words, which the legacy allocator rounds to 256 and the arena
// allocator to a 160-word class.

// SpaceEntries runs one cell per (size, allocator) pair.
func SpaceEntries(cfg DBConfig, sizes []int, threads int) []BenchEntry {
	var out []BenchEntry
	for _, size := range sizes {
		for _, path := range []string{"legacy", "arena"} {
			out = append(out, spaceCell(cfg, size, path, threads))
		}
	}
	return out
}

// spaceCell fills one database and measures its settled space usage. The
// fill is sequential and untimed: the figure is about bytes, not ops/sec,
// and a deterministic key set makes the per-key quotient exact.
func spaceCell(cfg DBConfig, size int, path string, threads int) BenchEntry {
	pool := pmem.New(pmem.Config{
		Mode: pmem.Direct, RegionWords: cfg.Words, Regions: threads + 1, Latency: cfg.Lat,
	})
	db := redodb.Open(pool, redodb.Options{Threads: threads, LegacyAlloc: path == "legacy"})
	s := db.Session(0)
	val := valueOf(size)
	for i := uint64(0); i < cfg.Keys; i++ {
		s.Put(dbKey(i), val)
	}
	st := db.AllocStats()
	// External fragmentation: block slots sitting in claimed spans with no
	// block allocated in them. The legacy format has no class breakdown, so
	// its entry reports only the in-use quotient (whose per-block
	// power-of-two rounding is the waste the arena classes remove).
	var capWords, liveWords uint64
	for _, c := range st.Classes {
		capWords += c.CapBlocks * c.Size
		liveWords += c.LiveBlocks * c.Size
	}
	var fragPct float64
	if capWords > 0 {
		fragPct = 100 * float64(capWords-liveWords) / float64(capWords)
	}
	return BenchEntry{
		Workload:    "fillrandom",
		Engine:      "RedoDB",
		Shards:      1,
		Threads:     threads,
		ValueSize:   size,
		Path:        path,
		BytesPerKey: float64(db.NVMUsedBytes()) / float64(cfg.Keys),
		FragPct:     fragPct,
	}
}
