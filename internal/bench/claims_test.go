package bench

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// TestFenceClaimsAcrossEngines dynamically validates the §2 comparison
// table: the measured fences per single-store update transaction must match
// each construction's claim exactly, for every engine, in one place.
func TestFenceClaimsAcrossEngines(t *testing.T) {
	want := map[string]uint64{
		"RedoOpt-PTM":   2,
		"RedoTimed-PTM": 2,
		"Redo-PTM":      2,
		"CX-PTM":        2,
		"CX-PUC":        2,
		"OneFile":       2,
		"RomulusLR":     4,
		"PSim-CoW":      2,
		"PMDK":          3, // 2+R with R=1 modified range
	}
	const n = 40
	for _, eng := range AllEngines() {
		t.Run(eng.Name, func(t *testing.T) {
			p, pool := eng.New(1, 1<<15, pmem.LatencyModel{}, nil)
			addr := ptm.RootAddr(0)
			p.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 1); return 0 })
			before := pool.Stats()
			for i := 0; i < n; i++ {
				p.Update(0, func(m ptm.Mem) uint64 {
					m.Store(addr, m.Load(addr)+1)
					return 0
				})
			}
			d := pool.Stats().Sub(before)
			expect, ok := want[eng.Name]
			if !ok {
				t.Fatalf("engine %s missing from the claims table", eng.Name)
			}
			if d.Fences() != expect*n {
				t.Fatalf("%s issued %d fences over %d txs, claim is %d per tx",
					eng.Name, d.Fences(), n, expect)
			}
		})
	}
}

// TestReplicaClaimsAcrossEngines validates the replica-count column: the
// constructions must work with exactly the pool geometry their claim names.
func TestReplicaClaimsAcrossEngines(t *testing.T) {
	// The factories already size pools per claim (2N, N+1, 2, …); this
	// test asserts the engines actually function at several N.
	for _, eng := range AllEngines() {
		for _, threads := range []int{1, 2, 5} {
			p, _ := eng.New(threads, 1<<15, pmem.LatencyModel{}, nil)
			addr := ptm.RootAddr(0)
			got := p.Update(0, func(m ptm.Mem) uint64 {
				m.Store(addr, 7)
				return m.Load(addr)
			})
			if got != 7 {
				t.Fatalf("%s with %d threads: update returned %d", eng.Name, threads, got)
			}
			if p.MaxThreads() != threads {
				t.Fatalf("%s: MaxThreads = %d, want %d", eng.Name, p.MaxThreads(), threads)
			}
		}
	}
}
