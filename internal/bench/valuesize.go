package bench

import (
	"fmt"
	"runtime"

	"repro/internal/core/redo"
	"repro/internal/pmem"
	"repro/internal/redodb"
)

// Value-size sweep: the tracked benchmark behind BENCH_pr5.json. RedoDB's
// per-word logging cost is invisible at db_bench's 100-byte values and
// dominant at 1KiB, so the sweep runs fillrandom at several payload sizes on
// two configurations of the same engine — the bulk-store path (RedoOpt) and
// the word-path ablation (RedoOpt minus Bulk) — recording throughput,
// pwbs/tx, pfences/tx, heap allocations per operation and latency tails.
// A readrandom cell per size tracks the zero-allocation GetAppend path.

// valueOf returns a deterministic payload of n bytes.
func valueOf(n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte('a' + i%26)
	}
	return v
}

// ValueSizeEntries runs the sweep cells for each payload size.
func ValueSizeEntries(cfg DBConfig, sizes []int, threads int) []BenchEntry {
	var out []BenchEntry
	for _, size := range sizes {
		for _, path := range []string{"bulk", "word"} {
			out = append(out, valueSizeCell(cfg, "fillrandom", size, path, threads))
		}
		out = append(out, valueSizeCell(cfg, "readrandom", size, "bulk", threads))
	}
	return out
}

// valueSizeCell measures one (workload, size, path) cell on a fresh RedoDB.
func valueSizeCell(cfg DBConfig, workload string, size int, path string, threads int) BenchEntry {
	feat := redo.Features{Funnel: true, StoreAgg: true, DeferFlush: true, NTCopy: true,
		Bulk: path == "bulk"}
	pool := pmem.New(pmem.Config{
		Mode: pmem.Direct, RegionWords: cfg.Words, Regions: threads + 1, Latency: cfg.Lat,
	})
	db := redodb.Open(pool, redodb.Options{Threads: threads, Features: &feat})
	sessions := make([]*redodb.Session, threads)
	for i := range sessions {
		sessions[i] = db.Session(i)
	}
	val := valueOf(size)
	// Pre-render the keys so key formatting doesn't pollute the per-op
	// allocation measurement (the point of the readrandom cells is that
	// GetAppend itself allocates nothing).
	keys := make([][]byte, cfg.Keys)
	for i := range keys {
		keys[i] = dbKey(uint64(i))
	}
	rngs := makeRNGs(threads)
	if workload == "readrandom" {
		for i := uint64(0); i < cfg.Keys; i++ {
			sessions[0].Put(keys[i], val)
		}
	}
	dsts := make([][]byte, threads)
	for i := range dsts {
		dsts[i] = make([]byte, 0, size+64)
	}
	pool.ResetStats()
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var res Result
	switch workload {
	case "fillrandom":
		res = RunThroughputLat(pool, threads, cfg.Dur, func(tid, i int) {
			sessions[tid].Put(keys[rngs[tid].intn(cfg.Keys)], val)
		})
	case "readrandom":
		res = RunThroughputLat(pool, threads, cfg.Dur, func(tid, i int) {
			dsts[tid], _ = sessions[tid].GetAppend(dsts[tid][:0], keys[rngs[tid].intn(cfg.Keys)])
		})
	default:
		panic(fmt.Sprintf("bench: unknown value-size workload %q", workload))
	}
	runtime.ReadMemStats(&ms1)
	ops := res.Ops
	if ops == 0 {
		ops = 1
	}
	return BenchEntry{
		Workload:     workload,
		Engine:       "RedoDB",
		Shards:       1,
		Threads:      threads,
		ValueSize:    size,
		Path:         path,
		OpsPerSec:    res.OpsPerSec(),
		PWBsPerTx:    res.PWBsPerOp(),
		PFencesPerTx: res.FencesPerOp(),
		AllocsPerOp:  float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
		P50Ns:        res.Lat.P50Ns,
		P99Ns:        res.Lat.P99Ns,
	}
}
