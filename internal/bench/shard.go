package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/pmem"
	"repro/internal/shardeddb"
)

// shardedKV adapts the sharded RedoDB front-end to the KV harness.
type shardedKV struct {
	db       *shardeddb.DB
	group    *pmem.Group
	sessions []*shardeddb.Session
	shards   int
}

// NewShardedKV creates a sharded RedoDB sized for cfg: each shard's regions
// get a 2/K slice of the configured words (the allocator's power-of-two
// rounding wants headroom over a perfect 1/K split), floored so tiny
// configurations still format.
func NewShardedKV(cfg DBConfig, maxThreads, shards int) KV {
	words := cfg.Words / uint64(shards) * 2
	if words < 1<<13 {
		words = 1 << 13
	}
	g := shardeddb.NewGroup(shardeddb.GroupConfig{
		Shards:     shards,
		Threads:    maxThreads,
		ShardWords: words,
		Mode:       pmem.Direct,
		Latency:    cfg.Lat,
	})
	db := shardeddb.Open(g, shardeddb.Options{Threads: maxThreads})
	kv := &shardedKV{db: db, group: g, shards: shards, sessions: make([]*shardeddb.Session, maxThreads)}
	for i := range kv.sessions {
		kv.sessions[i] = db.Session(i)
	}
	return kv
}

func (k *shardedKV) Name() string                 { return fmt.Sprintf("RedoDB-x%d", k.shards) }
func (k *shardedKV) Put(tid int, key, val []byte) { k.sessions[tid].Put(key, val) }
func (k *shardedKV) Get(tid int, key []byte) ([]byte, bool) {
	return k.sessions[tid].Get(key)
}
func (k *shardedKV) Count(tid int) uint64  { return k.sessions[tid].Len() }
func (k *shardedKV) NVMBytes() uint64      { return k.group.NVMBytes() }
func (k *shardedKV) VolatileBytes() uint64 { return 0 }
func (k *shardedKV) srcOf() StatSource     { return k.group }

// FigSharding prints the scaling figure: fillrandom and readrandom
// throughput of the sharded front-end at each shard count, with unsharded
// RedoDB as the 1-shard baseline sanity row.
func FigSharding(cfg DBConfig, shardCounts []int) {
	for _, workload := range []string{"fillrandom", "readrandom"} {
		PrintHeader(cfg.Out, fmt.Sprintf("Sharding — %s, %d keys", workload, cfg.Keys))
		for _, shards := range shardCounts {
			for _, threads := range cfg.Threads {
				res := runSharded(cfg, workload, shards, threads)
				PrintResult(cfg.Out, res)
			}
		}
	}
}

// runSharded measures one (workload, shards, threads) cell.
func runSharded(cfg DBConfig, workload string, shards, threads int) Result {
	kv := NewShardedKV(cfg, threads, shards)
	src := kv.(pooled).srcOf()
	rngs := makeRNGs(threads)
	if workload == "readrandom" {
		fill(kv, cfg.Keys)
	}
	src.ResetStats()
	var res Result
	switch workload {
	case "fillrandom":
		res = RunThroughputLat(src, threads, cfg.Dur, func(tid, i int) {
			kv.Put(tid, dbKey(rngs[tid].intn(cfg.Keys)), dbValue)
		})
	case "readrandom":
		res = RunThroughputLat(src, threads, cfg.Dur, func(tid, i int) {
			kv.Get(tid, dbKey(rngs[tid].intn(cfg.Keys)))
		})
	default:
		panic("bench: unknown sharded workload " + workload)
	}
	res.Engine = kv.Name()
	return res
}

// BenchEntry is one tracked benchmark measurement, serialized to the
// checked-in BENCH_*.json trajectory files.
type BenchEntry struct {
	Workload     string  `json:"workload"`
	Engine       string  `json:"engine"`
	Shards       int     `json:"shards"`
	Threads      int     `json:"threads"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	PWBsPerTx    float64 `json:"pwbs_per_tx"`
	PFencesPerTx float64 `json:"pfences_per_tx"`
	// Per-operation latency percentiles from the same run (PR 4): the
	// trajectory tracks tail behavior alongside the instruction parity.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// Value-size sweep fields (PR 5). ValueSize is the payload size in
	// bytes; Path is "bulk" (aggregated stores) or "word" (the per-word
	// ablation); AllocsPerOp is heap allocations per operation.
	ValueSize   int     `json:"value_size,omitempty"`
	Path        string  `json:"path,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Buffered-durability sweep field (PR 8): Sync batch depth per worker
	// when Path is "buffered"; 0 on the synchronous baseline cell.
	Depth int `json:"depth,omitempty"`
	// Network serving sweep fields (PR 9, emitted by cmd/kvload): offered
	// open-loop arrival rate (0 in closed-loop cells), connection count,
	// server-side service-time percentiles from the server's own STATS
	// histograms, and the cell's error count (client-observed failures
	// plus server-reported errors plus exactly-once verification
	// mismatches — the trajectory asserts it stays zero). For these cells
	// OpsPerSec is the achieved completion rate and P50Ns/P99Ns are
	// client-observed (queueing included under open loop).
	OfferedPerSec float64 `json:"offered_per_sec,omitempty"`
	Conns         int     `json:"conns,omitempty"`
	ServerP50Ns   int64   `json:"server_p50_ns,omitempty"`
	ServerP99Ns   int64   `json:"server_p99_ns,omitempty"`
	Errors        uint64  `json:"errors,omitempty"`
	// Space sweep fields (PR 10, the Fig-8-style figure): bytes of NVMM per
	// key after filling ValueSize-byte values under one allocator (Path is
	// "arena" or "legacy"), and the arena allocator's external fragmentation
	// — the percentage of claimed span capacity with no live block in it
	// (always 0 for legacy, which keeps no class breakdown).
	BytesPerKey float64 `json:"bytes_per_key,omitempty"`
	FragPct     float64 `json:"frag_pct,omitempty"`
}

// ShardingEntries runs the tracked-benchmark cells: fillrandom and
// readrandom at each shard count.
func ShardingEntries(cfg DBConfig, shardCounts []int, threads int) []BenchEntry {
	var out []BenchEntry
	for _, workload := range []string{"fillrandom", "readrandom"} {
		for _, shards := range shardCounts {
			res := runSharded(cfg, workload, shards, threads)
			out = append(out, BenchEntry{
				Workload:     workload,
				Engine:       res.Engine,
				Shards:       shards,
				Threads:      threads,
				OpsPerSec:    res.OpsPerSec(),
				PWBsPerTx:    res.PWBsPerOp(),
				PFencesPerTx: res.FencesPerOp(),
				P50Ns:        res.Lat.P50Ns,
				P99Ns:        res.Lat.P99Ns,
			})
		}
	}
	return out
}

// WriteBenchJSON writes entries to path as indented JSON.
func WriteBenchJSON(path string, entries []BenchEntry) error {
	b, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
