package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pmem"
)

// Result is one measured cell of a figure: an engine at a thread count.
type Result struct {
	Engine  string
	Threads int
	Ops     uint64
	Elapsed time.Duration
	Stats   pmem.StatsSnapshot // persistence-instruction delta for the run
	// Lat is the per-operation latency distribution; zero unless the cell
	// was measured with RunThroughputLat.
	Lat obs.HistSnapshot
}

// OpsPerSec reports throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// PWBsPerOp reports the mean flushes per operation — the paper's strongest
// throughput predictor on Optane ("the lower the number of pwbs an
// algorithm executes per transaction, the higher the throughput").
func (r Result) PWBsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Stats.PWBs) / float64(r.Ops)
}

// FencesPerOp reports the mean ordering instructions per operation.
func (r Result) FencesPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Stats.Fences()) / float64(r.Ops)
}

// StatSource is anything that reports persistence-instruction counters: a
// single *pmem.Pool or a multi-pool *pmem.Group (sharded engines), so every
// engine's pwbs/tx and pfences/tx stay reportable through one interface.
type StatSource interface {
	Stats() pmem.StatsSnapshot
	ResetStats()
}

// RunThroughput drives op from threads goroutines for about dur and returns
// the aggregate throughput. op receives the thread id and a per-thread
// iteration counter; it must perform exactly one logical operation.
func RunThroughput(pool StatSource, threads int, dur time.Duration, op func(tid, i int)) Result {
	before := pool.Stats()
	var stop atomic.Bool
	counts := make([]uint64, threads*8) // padded: one cache line apart
	var wg sync.WaitGroup
	start := time.Now()
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			n := uint64(0)
			for i := 0; !stop.Load(); i++ {
				op(tid, i)
				n++
			}
			counts[tid*8] = n
		}(tid)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	var total uint64
	for tid := 0; tid < threads; tid++ {
		total += counts[tid*8]
	}
	return Result{
		Threads: threads,
		Ops:     total,
		Elapsed: elapsed,
		Stats:   pool.Stats().Sub(before),
	}
}

// RunThroughputLat is RunThroughput with a per-operation latency histogram:
// each op is timed individually and folded into an HDR-style histogram
// (lock-free, allocation-free, so the throughput numbers stay comparable),
// and the snapshot lands in Result.Lat.
func RunThroughputLat(pool StatSource, threads int, dur time.Duration, op func(tid, i int)) Result {
	var hist obs.Histogram
	res := RunThroughput(pool, threads, dur, func(tid, i int) {
		start := time.Now()
		op(tid, i)
		hist.Observe(time.Since(start))
	})
	res.Lat = hist.Snapshot()
	return res
}

// Series prints results as the rows of one figure series.
func PrintHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n# %s\n", title)
	fmt.Fprintf(w, "%-16s %8s %14s %10s %10s\n", "engine", "threads", "ops/s", "pwbs/op", "fences/op")
}

// PrintResult prints one row.
func PrintResult(w io.Writer, r Result) {
	fmt.Fprintf(w, "%-16s %8d %14.0f %10.2f %10.2f\n",
		r.Engine, r.Threads, r.OpsPerSec(), r.PWBsPerOp(), r.FencesPerOp())
}
