package bench

import (
	"fmt"

	"repro/internal/core/cx"
	"repro/internal/core/redo"
	"repro/internal/onll"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// Ablation quantifies each RedoOpt-PTM optimization in isolation (§5's
// "Additional optimizations") on the queue workload — the workload the
// paper uses to motivate them, since every operation touches the queue ends
// and allocator metadata — and the CX reclamation-window trade-off
// (replica invalidation frequency vs memory).
func Ablation(cfg FigConfig) {
	steps := []struct {
		name string
		feat redo.Features
	}{
		{"base (none)", redo.Features{}},
		{"+funnel", redo.Features{Funnel: true}},
		{"+defer-flush", redo.Features{Funnel: true, DeferFlush: true}},
		{"+store-agg", redo.Features{Funnel: true, DeferFlush: true, StoreAgg: true}},
		{"+nt-copy (=Opt)", redo.Features{Funnel: true, DeferFlush: true, StoreAgg: true, NTCopy: true}},
	}
	PrintHeader(cfg.Out, "Ablation — Redo-PTM optimizations, queue enq+deq workload")
	for _, step := range steps {
		for _, threads := range cfg.Threads {
			feat := step.feat
			pool := pmem.New(pmem.Config{
				Mode: pmem.Direct, RegionWords: 1 << 20, Regions: threads + 1, Latency: cfg.Lat,
			})
			eng := redo.New(pool, redo.Config{Threads: threads, Features: &feat})
			res := runQueuePairs(eng, pool, threads, cfg)
			res.Engine = step.name
			PrintResult(cfg.Out, res)
		}
	}

	// §3's design argument: ONLL persists the operations themselves
	// (logical log, 1 fence) while CX keeps the queue volatile and
	// persists only curComb + the replica. The price ONLL pays is no
	// dynamic transactions and a log that grows with every operation.
	PrintHeader(cfg.Out, "Ablation — persistent logical log (ONLL) vs volatile queue (CX-PTM), queue workload")
	for _, threads := range cfg.Threads {
		opool := pmem.New(pmem.Config{
			Mode: pmem.Direct, RegionWords: 1 << 24, Regions: 1, Latency: cfg.Lat,
		})
		q := seqds.Queue{RootSlot: 0}
		oeng := onll.New(opool, onll.Config{
			Threads: threads,
			Ops: map[uint16]onll.OpFunc{
				1: func(m ptm.Mem, args []uint64) uint64 { q.Enqueue(m, args[0]); return 0 },
				2: func(m ptm.Mem, args []uint64) uint64 {
					v, _ := q.Dequeue(m)
					return v
				},
			},
			Init: func(m ptm.Mem, args []uint64) uint64 { q.Init(m); return 0 },
		})
		for i := 0; i < 1000; i++ {
			oeng.Update(0, 1, uint64(i))
		}
		res := RunThroughput(opool, threads, cfg.Dur, func(tid, i int) {
			if i%2 == 0 {
				oeng.Update(tid, 1, uint64(i))
			} else {
				oeng.Update(tid, 2)
			}
		})
		res.Engine = "ONLL"
		PrintResult(cfg.Out, res)
		fmt.Fprintf(cfg.Out, "%-16s %8s   (persistent log grew to %d entries)\n", "", "", oeng.LogLen())
	}
	for _, threads := range cfg.Threads {
		regions := 2 * threads
		if regions < 2 {
			regions = 2
		}
		pool := pmem.New(pmem.Config{
			Mode: pmem.Direct, RegionWords: 1 << 20, Regions: regions, Latency: cfg.Lat,
		})
		eng := cx.New(pool, cx.Config{Threads: threads, Interpose: true})
		res := runQueuePairs(eng, pool, threads, cfg)
		res.Engine = "CX-PTM"
		PrintResult(cfg.Out, res)
	}

	PrintHeader(cfg.Out, "Ablation — CX-PTM reclamation window (queue enq+deq workload)")
	for _, window := range []uint64{16, 256, 4096} {
		for _, threads := range cfg.Threads {
			regions := 2 * threads
			if regions < 2 {
				regions = 2
			}
			pool := pmem.New(pmem.Config{
				Mode: pmem.Direct, RegionWords: 1 << 20, Regions: regions, Latency: cfg.Lat,
			})
			eng := cx.New(pool, cx.Config{Threads: threads, Interpose: true, Window: window})
			res := runQueuePairs(eng, pool, threads, cfg)
			res.Engine = fmt.Sprintf("window=%d", window)
			PrintResult(cfg.Out, res)
			fmt.Fprintf(cfg.Out, "%-16s %8s   (replica copies: %d)\n", "", "", eng.Copies())
		}
	}
}

// runQueuePairs drives the Fig. 5 enqueue/dequeue pair workload on any PTM.
func runQueuePairs(p ptm.PTM, pool *pmem.Pool, threads int, cfg FigConfig) Result {
	q := queueForPTM(p)
	return RunThroughput(pool, threads, cfg.Dur, func(tid, i int) {
		if i%2 == 0 {
			p.Update(tid, func(m ptm.Mem) uint64 { q.enq(m, uint64(i)); return 0 })
		} else {
			p.Update(tid, func(m ptm.Mem) uint64 {
				v, _ := q.deq(m)
				return v
			})
		}
	})
}

// queueOps adapts seqds.Queue for the ablation runner.
type queueOps struct {
	enq func(m ptm.Mem, v uint64)
	deq func(m ptm.Mem) (uint64, bool)
}

// queueForPTM initializes a queue pre-filled with 1,000 elements.
func queueForPTM(p ptm.PTM) queueOps {
	q := seqds.Queue{RootSlot: 0}
	p.Update(0, func(m ptm.Mem) uint64 { q.Init(m); return 0 })
	for i := 0; i < 1000; i += 100 {
		base := uint64(i)
		p.Update(0, func(m ptm.Mem) uint64 {
			for j := uint64(0); j < 100; j++ {
				q.Enqueue(m, base+j)
			}
			return 0
		})
	}
	return queueOps{enq: q.Enqueue, deq: q.Dequeue}
}
