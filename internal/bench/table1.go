package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core/redo"
	"repro/internal/ptm"
)

// Table1 regenerates the paper's Table 1: the breakdown of where an update
// transaction spends its time — applying logs, flushing, copying replicas,
// running the user's closure (lambda) and back-off sleeping — for the three
// Redo variants and OneFile, on a hash set and a red-black tree under 100%
// updates at the given thread counts.
func Table1(out io.Writer, keys uint64, threadCounts []int, dur time.Duration, lat FigConfig) {
	engines := []Engine{
		RedoEngine(redo.Opt),
		RedoEngine(redo.Base),
		RedoEngine(redo.Timed),
		OneFileEngine(),
	}
	for _, ds := range []string{"hash", "tree"} {
		for _, threads := range threadCounts {
			fmt.Fprintf(out, "\n# Table 1 — %s set, %d keys, %d threads, 100%% updates\n", ds, keys, threads)
			fmt.Fprintf(out, "%-16s %12s %8s %8s %8s %8s %8s %8s\n",
				"engine", "updateTX(µs)", "slow", "apply%", "flush%", "copy%", "lambda%", "sleep%")
			var baseline time.Duration
			for i, eng := range engines {
				s, _ := SetByName(ds)
				prof := &ptm.Profile{}
				p, pool := eng.New(threads, wordsForKeys(keys), lat.Lat, prof)
				p.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
				fillSet(p, s, keys)
				rngs := makeRNGs(threads)
				RunThroughput(pool, threads, dur, func(tid, i int) {
					r := rngs[tid]
					k := r.intn(keys)
					removed := p.Update(tid, func(m ptm.Mem) uint64 {
						if s.Remove(m, k) {
							return 1
						}
						return 0
					})
					if removed == 1 {
						p.Update(tid, func(m ptm.Mem) uint64 {
							s.Add(m, k)
							return 0
						})
					}
				})
				snap := prof.Snapshot()
				mean := snap.MeanTx()
				if i == 0 {
					baseline = mean
				}
				slow := "-"
				if i > 0 && baseline > 0 {
					slow = fmt.Sprintf("%.1fx", float64(mean)/float64(baseline))
				}
				fmt.Fprintf(out, "%-16s %12.2f %8s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
					p.Name(),
					float64(mean.Nanoseconds())/1e3,
					slow,
					snap.Percent(snap.Apply),
					snap.Percent(snap.Flush),
					snap.Percent(snap.Copy),
					snap.Percent(snap.Lambda),
					snap.Percent(snap.Sleep),
				)
			}
		}
	}
}
