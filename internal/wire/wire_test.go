package wire

import (
	"bytes"
	"encoding/hex"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// frameEqual compares frames field by field, treating nil and empty
// payloads as equal (the decoder canonicalizes absent payloads to nil).
func frameEqual(a, b *Frame) bool {
	return a.Op == b.Op && a.Flags == b.Flags && a.ReqID == b.ReqID && a.Aux == b.Aux &&
		bytes.Equal(a.Key, b.Key) && bytes.Equal(a.Val, b.Val)
}

// randFrame builds an arbitrary well-formed frame.
func randFrame(rng *rand.Rand) Frame {
	ops := []Op{OpHello, OpGet, OpPut, OpDelete, OpWrite, OpScan, OpSync,
		OpWasApplied, OpAck, OpStats, OpDetectStats}
	f := Frame{
		Op:    ops[rng.Intn(len(ops))],
		ReqID: rng.Uint64(),
		Aux:   rng.Uint64(),
	}
	if rng.Intn(2) == 1 {
		f.Op |= RespBit
		f.Flags = uint32(rng.Intn(4)) // status byte
	} else if rng.Intn(2) == 1 {
		f.Flags = FlagDurable
		if rng.Intn(2) == 1 {
			f.Flags |= FlagDetectable
		}
	}
	if n := rng.Intn(64); n > 0 {
		f.Key = make([]byte, n)
		rng.Read(f.Key)
	}
	if n := rng.Intn(300); n > 0 {
		f.Val = make([]byte, n)
		rng.Read(f.Val)
	}
	return f
}

// TestFrameRoundTrip is the encode/decode identity property over every op:
// both the buffer decoder and the streaming decoder must reproduce any
// well-formed frame exactly, including back-to-back pipelined frames.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var stream []byte
	var frames []Frame
	for i := 0; i < 500; i++ {
		f := randFrame(rng)
		frames = append(frames, f)
		stream = AppendFrame(stream, &f)
	}
	// Buffer decoding, frame by frame.
	rest := stream
	for i := range frames {
		got, n, err := DecodeFrame(rest, DefaultLimits)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if !frameEqual(&got, &frames[i]) {
			t.Fatalf("frame %d: round trip mismatch:\n got %+v\nwant %+v", i, got, frames[i])
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d stray bytes after decoding all frames", len(rest))
	}
	// Stream decoding of the same pipelined bytes, scratch buffers reused.
	d := NewDecoder(bytes.NewReader(stream), Limits{})
	var f Frame
	for i := range frames {
		if err := d.ReadFrame(&f); err != nil {
			t.Fatalf("stream frame %d: %v", i, err)
		}
		if !frameEqual(&f, &frames[i]) {
			t.Fatalf("stream frame %d mismatch", i)
		}
	}
	if err := d.ReadFrame(&f); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

// TestFrameWriteFrame pins WriteFrame ≡ AppendFrame.
func TestFrameWriteFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		f := randFrame(rng)
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &f); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), AppendFrame(nil, &f)) {
			t.Fatalf("frame %d: WriteFrame and AppendFrame disagree", i)
		}
	}
}

// TestDecodeTypedErrors maps every malformation class to its typed error.
func TestDecodeTypedErrors(t *testing.T) {
	good := AppendFrame(nil, &Frame{Op: OpPut, ReqID: 1, Key: []byte("k"), Val: []byte("v")})
	corrupt := func(off int, b byte) []byte {
		buf := append([]byte(nil), good...)
		buf[off] = b
		return buf
	}
	cases := []struct {
		name string
		buf  []byte
		want func(error) bool
	}{
		{"empty", nil, func(e error) bool { return e == ErrTruncated }},
		{"short header", good[:HeaderSize-1], func(e error) bool { return e == ErrTruncated }},
		{"short payload", good[:len(good)-1], func(e error) bool { return e == ErrTruncated }},
		{"bad magic", corrupt(0, 'X'), func(e error) bool { return e == ErrBadMagic }},
		{"bad version", corrupt(2, 9), func(e error) bool { _, ok := e.(*VersionError); return ok }},
		// A bad opcode or unknown flag bits behind a VALID checksum (an
		// encoder bug or a future-version peer, not line noise).
		{"bad op", AppendFrame(nil, &Frame{Op: 0x7f}), func(e error) bool { _, ok := e.(*OpError); return ok }},
		{"zero op", AppendFrame(nil, &Frame{Op: 0}), func(e error) bool { _, ok := e.(*OpError); return ok }},
		{"bad flags", AppendFrame(nil, &Frame{Op: OpGet, Flags: 1 << 30}), func(e error) bool { _, ok := e.(*FlagError); return ok }},
		{"bit flip", corrupt(9, 0xaa), func(e error) bool { _, ok := e.(*CRCError); return ok }},
		{"crc flip", corrupt(33, 0x55), func(e error) bool { _, ok := e.(*CRCError); return ok }},
	}
	for _, tc := range cases {
		_, _, err := DecodeFrame(tc.buf, DefaultLimits)
		if err == nil || !tc.want(err) {
			t.Errorf("%s: got error %v", tc.name, err)
		}
		if err != nil && !IsTyped(err) {
			t.Errorf("%s: error %v is not typed", tc.name, err)
		}
	}
	// Oversized lengths must be rejected before any allocation. The header
	// must be re-checksummed or the CRC check fires first.
	big := Frame{Op: OpPut, Key: bytes.Repeat([]byte("k"), 10), Val: []byte("v")}
	buf := AppendFrame(nil, &big)
	_, _, err := DecodeFrame(buf, Limits{MaxKey: 4, MaxVal: 4})
	if _, ok := err.(*SizeError); !ok {
		t.Errorf("oversized key: got %v, want *SizeError", err)
	}
}

// TestDecoderMidFrameEOF pins the stream decoder's distinction between a
// clean close (io.EOF at a frame boundary) and a connection that died
// mid-frame (io.ErrUnexpectedEOF) — the server's half-written-frame path.
func TestDecoderMidFrameEOF(t *testing.T) {
	full := AppendFrame(nil, &Frame{Op: OpPut, ReqID: 3, Key: []byte("key"), Val: []byte("value")})
	for cut := 1; cut < len(full); cut++ {
		d := NewDecoder(bytes.NewReader(full[:cut]), Limits{})
		var f Frame
		if err := d.ReadFrame(&f); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestBatchPayloadRoundTrip covers the WRITEBATCH encoding, including empty
// values and interleaved deletes.
func TestBatchPayloadRoundTrip(t *testing.T) {
	type bop struct {
		del      bool
		key, val string
	}
	in := []bop{
		{false, "alpha", "1"},
		{true, "beta", ""},
		{false, "gamma", strings.Repeat("v", 200)},
		{false, "empty-val", ""},
		{true, "d", ""},
	}
	var buf []byte
	for _, op := range in {
		if op.del {
			buf = AppendBatchDelete(buf, []byte(op.key))
		} else {
			buf = AppendBatchPut(buf, []byte(op.key), []byte(op.val))
		}
	}
	var out []bop
	err := DecodeBatch(buf, DefaultLimits, func(del bool, key, val []byte) {
		out = append(out, bop{del, string(key), string(val)})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d ops, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("op %d: %+v != %+v", i, in[i], out[i])
		}
	}
	// Truncations and hostile lengths are typed, never over-read.
	for cut := 1; cut < len(buf); cut++ {
		if err := DecodeBatch(buf[:cut], DefaultLimits, func(bool, []byte, []byte) {}); err != nil {
			if !IsTyped(err) {
				t.Fatalf("cut %d: untyped error %v", cut, err)
			}
		}
	}
	if err := DecodeBatch([]byte{7}, DefaultLimits, func(bool, []byte, []byte) {}); err == nil {
		t.Fatal("bad batch kind accepted")
	}
}

// TestScanPayloadRoundTrip covers the SCAN pair encoding.
func TestScanPayloadRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendScanPair(buf, []byte("k1"), []byte("v1"))
	buf = AppendScanPair(buf, []byte("k2"), nil)
	var got [][2]string
	if err := DecodeScan(buf, DefaultLimits, func(k, v []byte) {
		got = append(got, [2]string{string(k), string(v)})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != [2]string{"k1", "v1"} || got[1] != [2]string{"k2", ""} {
		t.Fatalf("scan decode: %v", got)
	}
	if err := DecodeScan(buf[:3], DefaultLimits, func(k, v []byte) {}); !IsTyped(err) {
		t.Fatalf("truncated scan: %v", err)
	}
}

// TestDetectStatsPayload round-trips the 24-byte receipt summary.
func TestDetectStatsPayload(t *testing.T) {
	buf := AppendDetectStats(nil, 7, 99, 42)
	r, m, a, err := DecodeDetectStats(buf)
	if err != nil || r != 7 || m != 99 || a != 42 {
		t.Fatalf("got (%d,%d,%d,%v)", r, m, a, err)
	}
	if _, _, _, err := DecodeDetectStats(buf[:23]); !IsTyped(err) {
		t.Fatalf("short payload: %v", err)
	}
}

// TestGoldenFrames pins the exact v1 byte layout. These fixtures are the
// compatibility contract: if any of them changes, the protocol version must
// be bumped, because deployed peers would no longer parse each other.
func TestGoldenFrames(t *testing.T) {
	cases := []struct {
		name string
		f    Frame
		hex  string
	}{
		{
			name: "hello",
			f:    Frame{Op: OpHello, ReqID: 1, Aux: 0xdead},
			hex: "6b76010100000000" + "0100000000000000" + "adde000000000000" +
				"00000000" + "00000000" + "4253cb0d",
		},
		{
			name: "get",
			f:    Frame{Op: OpGet, ReqID: 2, Key: []byte("k")},
			hex: "6b76010200000000" + "0200000000000000" + "0000000000000000" +
				"01000000" + "00000000" + "b4499253" + "6b",
		},
		{
			name: "put-durable-detectable",
			f:    Frame{Op: OpPut, Flags: FlagDurable | FlagDetectable, ReqID: 9, Key: []byte("k"), Val: []byte("v")},
			hex: "6b76010300030000" + "0900000000000000" + "0000000000000000" +
				"01000000" + "01000000" + "a04faeb1" + "6b" + "76",
		},
		{
			name: "put-response-epoch",
			f:    Frame{Op: OpPut | RespBit, Flags: uint32(StatusOK), ReqID: 9, Aux: 5},
			hex: "6b76018300000000" + "0900000000000000" + "0500000000000000" +
				"00000000" + "00000000" + "20a517e1",
		},
		{
			name: "scan",
			f:    Frame{Op: OpScan, ReqID: 4, Aux: 10, Key: []byte("a")},
			hex: "6b76010600000000" + "0400000000000000" + "0a00000000000000" +
				"01000000" + "00000000" + "19c37240" + "61",
		},
		{
			name: "sync",
			f:    Frame{Op: OpSync, ReqID: 11},
			hex: "6b76010700000000" + "0b00000000000000" + "0000000000000000" +
				"00000000" + "00000000" + "46ab79f8",
		},
	}
	for _, tc := range cases {
		got := hex.EncodeToString(AppendFrame(nil, &tc.f))
		if got != tc.hex {
			t.Errorf("%s: encoding changed — v1 wire format broken\n got %s\nwant %s",
				tc.name, got, tc.hex)
		}
		f, n, err := DecodeFrame(AppendFrame(nil, &tc.f), DefaultLimits)
		if err != nil || n != HeaderSize+len(tc.f.Key)+len(tc.f.Val) || !frameEqual(&f, &tc.f) {
			t.Errorf("%s: golden frame does not decode to itself (%v)", tc.name, err)
		}
	}
}
