package wire

import "encoding/binary"

// Op-specific payload encodings, shared by both ends of the connection.
//
// WRITEBATCH value payload: a sequence of operations, each
//
//	[1 byte kind: 0 put, 1 delete] [u32 key length] key
//	                               [u32 value length] value   (puts only)
//
// SCAN response value payload: a sequence of pairs, each
//
//	[u32 key length] key [u32 value length] value
//
// Both decoders validate every length against the remaining buffer and the
// frame Limits before touching payload bytes, so a hostile length field
// yields a typed *PayloadError, never an over-read or a giant allocation.

// Batch op kinds.
const (
	batchPut    = 0
	batchDelete = 1
)

// AppendBatchPut appends a put to a WRITEBATCH payload.
func AppendBatchPut(dst, key, val []byte) []byte {
	dst = append(dst, batchPut)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
	dst = append(dst, key...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(val)))
	return append(dst, val...)
}

// AppendBatchDelete appends a delete to a WRITEBATCH payload.
func AppendBatchDelete(dst, key []byte) []byte {
	dst = append(dst, batchDelete)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
	return append(dst, key...)
}

// DecodeBatch walks a WRITEBATCH payload, calling fn for every operation
// (val is nil for deletes). The yielded slices alias buf — consumers that
// retain them past the call must copy (shardeddb.WriteBatch.Put does).
func DecodeBatch(buf []byte, lim Limits, fn func(del bool, key, val []byte)) error {
	for len(buf) > 0 {
		kind := buf[0]
		if kind != batchPut && kind != batchDelete {
			return &PayloadError{Reason: "batch op kind out of range"}
		}
		buf = buf[1:]
		var key, val []byte
		var err error
		if key, buf, err = takeChunk(buf, lim.MaxKey, "key"); err != nil {
			return err
		}
		if kind == batchPut {
			if val, buf, err = takeChunk(buf, lim.MaxVal, "value"); err != nil {
				return err
			}
		}
		fn(kind == batchDelete, key, val)
	}
	return nil
}

// AppendScanPair appends one pair to a SCAN response payload.
func AppendScanPair(dst, key, val []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
	dst = append(dst, key...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(val)))
	return append(dst, val...)
}

// DecodeScan walks a SCAN response payload, calling fn for every pair. The
// yielded slices alias buf.
func DecodeScan(buf []byte, lim Limits, fn func(key, val []byte)) error {
	for len(buf) > 0 {
		key, rest, err := takeChunk(buf, lim.MaxKey, "key")
		if err != nil {
			return err
		}
		val, rest, err := takeChunk(rest, lim.MaxVal, "value")
		if err != nil {
			return err
		}
		fn(key, val)
		buf = rest
	}
	return nil
}

// takeChunk pops one [u32 length]bytes chunk off buf, bounds-checked against
// both the remaining buffer and max.
func takeChunk(buf []byte, max int, what string) (chunk, rest []byte, err error) {
	if len(buf) < 4 {
		return nil, nil, &PayloadError{Reason: what + " length truncated"}
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n > max {
		return nil, nil, &PayloadError{Reason: what + " length exceeds limit"}
	}
	if n > len(buf) {
		return nil, nil, &PayloadError{Reason: what + " overruns payload"}
	}
	return buf[:n:n], buf[n:], nil
}

// DetectStats payload (24 bytes): receipts, maxSeq, acked.

// AppendDetectStats encodes a DETECTSTATS response payload.
func AppendDetectStats(dst []byte, receipts, maxSeq, acked uint64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, receipts)
	dst = binary.LittleEndian.AppendUint64(dst, maxSeq)
	return binary.LittleEndian.AppendUint64(dst, acked)
}

// DecodeDetectStats parses a DETECTSTATS response payload.
func DecodeDetectStats(buf []byte) (receipts, maxSeq, acked uint64, err error) {
	if len(buf) != 24 {
		return 0, 0, 0, &PayloadError{Reason: "detect stats payload is not 24 bytes"}
	}
	return binary.LittleEndian.Uint64(buf),
		binary.LittleEndian.Uint64(buf[8:]),
		binary.LittleEndian.Uint64(buf[16:]), nil
}
