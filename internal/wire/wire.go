// Package wire defines the v1 binary protocol the network front-end speaks:
// length-prefixed frames over a byte stream (TCP in production, loopback and
// in-memory pipes in tests), designed so a remote client can reach the full
// semantic surface of the sharded store — plain and detectable operations,
// durable-vs-buffered write flags, cross-shard batches, snapshot scans, and
// the Sync barrier.
//
// Frame layout (little-endian, fixed 36-byte header, CRC-guarded):
//
//	off  size  field
//	0    2     magic "kv"
//	2    1     version (1)
//	3    1     opcode (response bit 0x80 echoes the request opcode)
//	4    4     flags: low byte = status on responses; option bits above
//	8    8     request id (echoed verbatim; the per-client seq for
//	           detectable operations)
//	16   8     aux (op-specific: client id on HELLO, scan limit / count,
//	           ack watermark, commit epoch on write responses)
//	24   4     key length in bytes
//	28   4     value length in bytes
//	32   4     CRC-32 (IEEE) over bytes 0..32
//	36   ...   key bytes, then value bytes
//
// The header CRC turns line noise and desynchronized streams into typed
// errors instead of absurd allocations: a reader validates magic, version,
// opcode, CRC, and both length fields against its Limits before it reads (or
// allocates) a single payload byte. Decoding therefore never over-reads and
// never panics on adversarial input — the FuzzDecodeFrame property.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Protocol constants.
const (
	Magic0  = 'k'
	Magic1  = 'v'
	Version = 1

	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 36
)

// Op is a frame opcode. Responses echo the request opcode with RespBit set.
type Op uint8

const (
	OpHello       Op = 1  // aux = client id; response aux = server mode bits
	OpGet         Op = 2  // key; response value = stored value
	OpPut         Op = 3  // key, value; response aux = commit epoch
	OpDelete      Op = 4  // key; response aux = commit epoch, status reports presence
	OpWrite       Op = 5  // value = batch payload; response aux = commit epoch
	OpScan        Op = 6  // key = start key, aux = max pairs; response value = pairs
	OpSync        Op = 7  // durability barrier; response after watermark covers writes
	OpWasApplied  Op = 8  // reqid = probed seq; status OK/NotFound
	OpAck         Op = 9  // aux = acked watermark
	OpStats       Op = 10 // response value = JSON server stats
	OpDetectStats Op = 11 // response value = 24-byte (receipts, maxSeq, acked)

	// RespBit marks a frame as the response to the request opcode below it.
	RespBit Op = 0x80

	maxOp = OpDetectStats
)

// IsResponse reports whether the opcode carries the response bit.
func (o Op) IsResponse() bool { return o&RespBit != 0 }

// Base strips the response bit.
func (o Op) Base() Op { return o &^ RespBit }

func (o Op) String() string {
	names := [...]string{
		OpHello: "HELLO", OpGet: "GET", OpPut: "PUT", OpDelete: "DELETE",
		OpWrite: "WRITEBATCH", OpScan: "SCAN", OpSync: "SYNC",
		OpWasApplied: "WASAPPLIED", OpAck: "ACK", OpStats: "STATS",
		OpDetectStats: "DETECTSTATS",
	}
	b := o.Base()
	if int(b) < len(names) && names[b] != "" {
		if o.IsResponse() {
			return names[b] + "-RESP"
		}
		return names[b]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Flag bits (the low byte of flags is the response status).
const (
	// FlagDurable asks the server not to respond until the write is durable
	// (a per-request PutDurable/WriteDurable in buffered mode; a no-op on a
	// synchronous server, which is always durable on commit).
	FlagDurable uint32 = 1 << 8
	// FlagDetectable routes the write through the exactly-once path: the
	// request id is the per-client sequence number and the connection must
	// have sent HELLO with a nonzero client id.
	FlagDetectable uint32 = 1 << 9

	flagsKnown = FlagDurable | FlagDetectable | 0xff
)

// Response status codes (low byte of flags).
const (
	StatusOK       uint8 = 0
	StatusNotFound uint8 = 1 // GET/WASAPPLIED miss; DELETE of an absent key
	StatusDup      uint8 = 2 // detectable write deduplicated by its receipt
	StatusErr      uint8 = 3 // server-side failure; value holds the message
)

// Server mode bits (aux of the HELLO response).
const (
	ModeBuffered uint64 = 1 << 0 // relaxed durability: writes need Sync/FlagDurable
)

// StatsReset, set in a STATS request's aux, asks the server to reset its
// counters and histograms after taking the returned snapshot — the load
// harness's cell boundary.
const StatsReset uint64 = 1 << 0

// Limits bounds what a decoder will accept before reading payload bytes.
type Limits struct {
	MaxKey int
	MaxVal int
}

// DefaultLimits is generous enough for every workload in this repo while
// keeping a hostile length field from allocating gigabytes.
var DefaultLimits = Limits{MaxKey: 1 << 16, MaxVal: 1 << 24}

// Frame is one decoded protocol frame. Key and Val alias the decode
// destination's scratch buffers when ReadFrameInto is used — they are valid
// only until the next read on that decoder (see the scratch-reuse contract
// in internal/server: every consumer that outlives the read must copy, and
// WriteBatch assembly does so by construction).
type Frame struct {
	Op    Op
	Flags uint32
	ReqID uint64
	Aux   uint64
	Key   []byte
	Val   []byte
}

// Status returns the response status byte.
func (f *Frame) Status() uint8 { return uint8(f.Flags & 0xff) }

var crcTable = crc32.IEEETable

// putHeader encodes the frame header (with CRC) into hdr.
func (f *Frame) putHeader(hdr *[HeaderSize]byte) {
	hdr[0], hdr[1], hdr[2], hdr[3] = Magic0, Magic1, Version, byte(f.Op)
	binary.LittleEndian.PutUint32(hdr[4:], f.Flags)
	binary.LittleEndian.PutUint64(hdr[8:], f.ReqID)
	binary.LittleEndian.PutUint64(hdr[16:], f.Aux)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(f.Key)))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(len(f.Val)))
	binary.LittleEndian.PutUint32(hdr[32:], crc32.Checksum(hdr[:32], crcTable))
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. It never fails: encoding is total for any Frame whose key and value
// fit in uint32 lengths (enforced by the caller's Limits on the read side).
func AppendFrame(dst []byte, f *Frame) []byte {
	var hdr [HeaderSize]byte
	f.putHeader(&hdr)
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Key...)
	return append(dst, f.Val...)
}

// WriteFrame encodes the frame to w.
func WriteFrame(w io.Writer, f *Frame) error {
	var hdr [HeaderSize]byte
	f.putHeader(&hdr)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Key) > 0 {
		if _, err := w.Write(f.Key); err != nil {
			return err
		}
	}
	if len(f.Val) > 0 {
		if _, err := w.Write(f.Val); err != nil {
			return err
		}
	}
	return nil
}

// parseHeader validates a frame header and returns the payload lengths.
// Every check fires before any payload byte is read or allocated.
func parseHeader(hdr []byte, lim Limits) (f Frame, klen, vlen int, err error) {
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		return f, 0, 0, ErrBadMagic
	}
	if hdr[2] != Version {
		return f, 0, 0, &VersionError{Got: hdr[2]}
	}
	if got, want := binary.LittleEndian.Uint32(hdr[32:]), crc32.Checksum(hdr[:32], crcTable); got != want {
		return f, 0, 0, &CRCError{Got: got, Want: want}
	}
	op := Op(hdr[3])
	if b := op.Base(); b == 0 || b > maxOp {
		return f, 0, 0, &OpError{Op: op}
	}
	flags := binary.LittleEndian.Uint32(hdr[4:])
	if flags&^flagsKnown != 0 {
		return f, 0, 0, &FlagError{Flags: flags}
	}
	klen = int(binary.LittleEndian.Uint32(hdr[24:]))
	vlen = int(binary.LittleEndian.Uint32(hdr[28:]))
	if klen > lim.MaxKey || vlen > lim.MaxVal {
		return f, 0, 0, &SizeError{KeyLen: klen, ValLen: vlen, Limits: lim}
	}
	f.Op = op
	f.Flags = flags
	f.ReqID = binary.LittleEndian.Uint64(hdr[8:])
	f.Aux = binary.LittleEndian.Uint64(hdr[16:])
	return f, klen, vlen, nil
}

// DecodeFrame parses one frame from the front of buf, returning the frame
// and the number of bytes consumed. A frame cut short by len(buf) returns
// ErrTruncated; all other malformed inputs return their typed error. It
// never panics and never reads past the reported lengths — the fuzz-pinned
// contract.
func DecodeFrame(buf []byte, lim Limits) (Frame, int, error) {
	if len(buf) < HeaderSize {
		return Frame{}, 0, ErrTruncated
	}
	f, klen, vlen, err := parseHeader(buf[:HeaderSize], lim)
	if err != nil {
		return Frame{}, 0, err
	}
	total := HeaderSize + klen + vlen
	if len(buf) < total {
		return Frame{}, 0, ErrTruncated
	}
	if klen > 0 {
		f.Key = buf[HeaderSize : HeaderSize+klen : HeaderSize+klen]
	}
	if vlen > 0 {
		f.Val = buf[HeaderSize+klen : total : total]
	}
	return f, total, nil
}

// Decoder reads frames from a stream, reusing one header and two payload
// scratch buffers across calls. The decoded Frame's Key/Val alias those
// buffers: valid until the next ReadFrame.
type Decoder struct {
	r   *bufio.Reader
	lim Limits
	hdr [HeaderSize]byte
	key []byte
	val []byte
}

// NewDecoder wraps r with DefaultLimits unless lim is nonzero.
func NewDecoder(r io.Reader, lim Limits) *Decoder {
	if lim.MaxKey == 0 {
		lim.MaxKey = DefaultLimits.MaxKey
	}
	if lim.MaxVal == 0 {
		lim.MaxVal = DefaultLimits.MaxVal
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return &Decoder{r: br, lim: lim}
}

// Buffered reports the bytes already read from the stream but not yet
// decoded — zero means the next ReadFrame would block, which is the server's
// cue to flush its pending batch and responses.
func (d *Decoder) Buffered() int { return d.r.Buffered() }

// grow returns buf resized to n, reusing capacity.
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// ReadFrame decodes the next frame into f. A clean EOF at a frame boundary
// returns io.EOF; a stream that dies mid-frame returns io.ErrUnexpectedEOF;
// malformed headers return their typed error with no payload consumed.
func (d *Decoder) ReadFrame(f *Frame) error {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	nf, klen, vlen, err := parseHeader(d.hdr[:], d.lim)
	if err != nil {
		return err
	}
	d.key = grow(d.key, klen)
	d.val = grow(d.val, vlen)
	if _, err := io.ReadFull(d.r, d.key); err != nil {
		return io.ErrUnexpectedEOF
	}
	if _, err := io.ReadFull(d.r, d.val); err != nil {
		return io.ErrUnexpectedEOF
	}
	*f = nf
	if klen > 0 {
		f.Key = d.key
	}
	if vlen > 0 {
		f.Val = d.val
	}
	return nil
}
