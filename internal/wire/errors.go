package wire

import (
	"errors"
	"fmt"
)

// Sentinel and typed decode errors. Every way a frame can be malformed maps
// to exactly one of these — the protocol conformance and fuzz tests assert
// that decoding adversarial bytes yields one of them, never a panic.
var (
	// ErrBadMagic means the stream is not speaking this protocol (or has
	// desynchronized); the connection is unrecoverable.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrTruncated means the buffer ends mid-frame (DecodeFrame only; the
	// streaming Decoder reports io.ErrUnexpectedEOF instead).
	ErrTruncated = errors.New("wire: truncated frame")
)

// VersionError reports a frame from an unsupported protocol version.
type VersionError struct{ Got uint8 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: protocol version %d (speaking %d)", e.Got, Version)
}

// CRCError reports a header whose checksum does not cover its bytes.
type CRCError struct{ Got, Want uint32 }

func (e *CRCError) Error() string {
	return fmt.Sprintf("wire: header crc %#x, computed %#x", e.Got, e.Want)
}

// OpError reports an opcode outside the v1 table.
type OpError struct{ Op Op }

func (e *OpError) Error() string { return fmt.Sprintf("wire: unknown opcode %d", uint8(e.Op)) }

// FlagError reports unknown option bits (reserved for future versions; a v1
// peer must reject rather than silently ignore them).
type FlagError struct{ Flags uint32 }

func (e *FlagError) Error() string { return fmt.Sprintf("wire: unknown flag bits %#x", e.Flags) }

// SizeError reports payload lengths beyond the decoder's limits.
type SizeError struct {
	KeyLen, ValLen int
	Limits         Limits
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("wire: frame lengths (key %d, val %d) exceed limits (%d, %d)",
		e.KeyLen, e.ValLen, e.Limits.MaxKey, e.Limits.MaxVal)
}

// PayloadError reports a structurally invalid op-specific payload (batch or
// scan encoding) inside an otherwise well-formed frame.
type PayloadError struct{ Reason string }

func (e *PayloadError) Error() string { return "wire: bad payload: " + e.Reason }

// IsTyped reports whether err is one of this package's decode errors — the
// fuzz harness's "typed error, never a panic or an untyped failure" check.
func IsTyped(err error) bool {
	if errors.Is(err, ErrBadMagic) || errors.Is(err, ErrTruncated) {
		return true
	}
	var (
		ve *VersionError
		ce *CRCError
		oe *OpError
		fe *FlagError
		se *SizeError
		pe *PayloadError
	)
	return errors.As(err, &ve) || errors.As(err, &ce) || errors.As(err, &oe) ||
		errors.As(err, &fe) || errors.As(err, &se) || errors.As(err, &pe)
}
