package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame is the adversarial-input property for the frame decoder:
// for ANY byte string — truncated, oversized, bit-flipped, or hostile
// lengths — DecodeFrame must return a typed error or a well-formed frame,
// never panic, never report consuming more bytes than it was given, and any
// frame it accepts must re-encode to exactly the bytes it consumed (decode
// is a partial inverse of encode). Batch and scan payload decoding rides
// the same harness for WRITEBATCH/SCAN frames.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, &Frame{Op: OpGet, ReqID: 1, Key: []byte("k")}))
	f.Add(AppendFrame(nil, &Frame{Op: OpPut, Flags: FlagDurable, ReqID: 2, Key: []byte("k"), Val: []byte("v")}))
	f.Add(AppendFrame(nil, &Frame{Op: OpWrite, ReqID: 3,
		Val: AppendBatchDelete(AppendBatchPut(nil, []byte("a"), []byte("1")), []byte("b"))}))
	f.Add(AppendFrame(nil, &Frame{Op: OpScan | RespBit, ReqID: 4,
		Val: AppendScanPair(nil, []byte("k"), []byte("v"))}))
	f.Add(AppendFrame(nil, &Frame{Op: OpSync, ReqID: 5}))
	f.Add([]byte("kv")) // truncated header
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	lim := Limits{MaxKey: 1 << 10, MaxVal: 1 << 12}
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data, lim)
		if err != nil {
			if !IsTyped(err) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			if n != 0 {
				t.Fatalf("failed decode reported %d consumed bytes", n)
			}
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// Accepted frames re-encode to the consumed bytes exactly.
		if re := AppendFrame(nil, &frame); !bytes.Equal(re, data[:n]) {
			t.Fatalf("decode/encode not an identity:\n in  %x\n out %x", data[:n], re)
		}
		// Op-specific payloads must decode to typed errors too, without
		// panics or over-reads, whatever the fuzzer put in Val.
		switch frame.Op.Base() {
		case OpWrite:
			ops := 0
			if err := DecodeBatch(frame.Val, lim, func(del bool, k, v []byte) { ops++ }); err != nil && !IsTyped(err) {
				t.Fatalf("untyped batch error: %v", err)
			}
		case OpScan:
			if err := DecodeScan(frame.Val, lim, func(k, v []byte) {}); err != nil && !IsTyped(err) {
				t.Fatalf("untyped scan error: %v", err)
			}
		case OpDetectStats:
			if _, _, _, err := DecodeDetectStats(frame.Val); err != nil && !IsTyped(err) {
				t.Fatalf("untyped detect-stats error: %v", err)
			}
		}
	})
}
