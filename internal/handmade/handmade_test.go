package handmade

import (
	"sync"
	"testing"

	"repro/internal/pmem"
)

type hq interface {
	Enqueue(tid int, v uint64)
	Dequeue(tid int) (uint64, bool)
	Len() int
	Name() string
}

func queues(t *testing.T, threads int) map[string]hq {
	t.Helper()
	mk := func() *pmem.Region {
		return pmem.New(pmem.Config{RegionWords: 1 << 22, Regions: 1}).Region(0)
	}
	return map[string]hq{
		"FHMP":    NewFHMP(mk(), threads),
		"NormOpt": NewNormOpt(mk(), threads),
	}
}

func TestFIFOSequential(t *testing.T) {
	for name, q := range queues(t, 1) {
		t.Run(name, func(t *testing.T) {
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("Dequeue on empty queue succeeded")
			}
			for i := uint64(1); i <= 500; i++ {
				q.Enqueue(0, i)
			}
			if q.Len() != 500 {
				t.Fatalf("Len = %d, want 500", q.Len())
			}
			for i := uint64(1); i <= 500; i++ {
				v, ok := q.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("Dequeue = %d,%v, want %d,true", v, ok, i)
				}
			}
			if _, ok := q.Dequeue(0); ok {
				t.Fatal("queue not empty after draining")
			}
		})
	}
}

func TestNodeReuseAfterDelay(t *testing.T) {
	// Churn well past the reuse delay so recycled addresses are exercised.
	for name, q := range queues(t, 1) {
		t.Run(name, func(t *testing.T) {
			for i := uint64(0); i < 5000; i++ {
				q.Enqueue(0, i)
				v, ok := q.Dequeue(0)
				if !ok || v != i {
					t.Fatalf("churn %d: got %d,%v", i, v, ok)
				}
			}
		})
	}
}

func TestConcurrentNoLossNoDup(t *testing.T) {
	const threads, per = 8, 2000
	for name, q := range queues(t, threads) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			out := make([][]uint64, threads)
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						q.Enqueue(tid, uint64(tid)<<32|uint64(i))
						if v, ok := q.Dequeue(tid); ok {
							out[tid] = append(out[tid], v)
						}
					}
				}(tid)
			}
			wg.Wait()
			seen := make(map[uint64]bool)
			total := 0
			for _, vs := range out {
				for _, v := range vs {
					if seen[v] {
						t.Fatalf("value %#x dequeued twice", v)
					}
					seen[v] = true
					total++
				}
			}
			if total+q.Len() != threads*per {
				t.Fatalf("dequeued %d + remaining %d != enqueued %d",
					total, q.Len(), threads*per)
			}
		})
	}
}

func TestPerThreadFIFOOrder(t *testing.T) {
	// With a single consumer, each producer's values come out in order.
	const producers, per = 4, 1000
	q := NewNormOpt(pmem.New(pmem.Config{RegionWords: 1 << 22, Regions: 1}).Region(0), producers+1)
	var wg sync.WaitGroup
	for tid := 0; tid < producers; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(tid, uint64(tid)<<32|uint64(i))
			}
		}(tid)
	}
	wg.Wait()
	last := make([]int64, producers)
	for i := range last {
		last[i] = -1
	}
	for {
		v, ok := q.Dequeue(producers)
		if !ok {
			break
		}
		tid, i := int(v>>32), int64(v&0xffffffff)
		if i <= last[tid] {
			t.Fatalf("producer %d out of order: %d after %d", tid, i, last[tid])
		}
		last[tid] = i
	}
}

func TestFenceCounts(t *testing.T) {
	pool := pmem.New(pmem.Config{RegionWords: 1 << 20, Regions: 1})
	f := NewFHMP(pool.Region(0), 1)
	f.Enqueue(0, 1)
	f.Enqueue(0, 2) // warm
	before := pool.Stats()
	f.Enqueue(0, 3)
	if d := pool.Stats().Sub(before); d.Fences() != 2 {
		t.Fatalf("FHMP enqueue fences = %d, want 2", d.Fences())
	}
	before = pool.Stats()
	f.Dequeue(0)
	if d := pool.Stats().Sub(before); d.Fences() != 4 {
		t.Fatalf("FHMP dequeue fences = %d, want 4", d.Fences())
	}

	pool2 := pmem.New(pmem.Config{RegionWords: 1 << 20, Regions: 1})
	n := NewNormOpt(pool2.Region(0), 1)
	n.Enqueue(0, 1)
	before = pool2.Stats()
	n.Enqueue(0, 2)
	if d := pool2.Stats().Sub(before); d.Fences() != 2 {
		t.Fatalf("NormOpt enqueue fences = %d, want 2", d.Fences())
	}
	before = pool2.Stats()
	n.Dequeue(0)
	if d := pool2.Stats().Sub(before); d.Fences() != 2 {
		t.Fatalf("NormOpt dequeue fences = %d, want 2", d.Fences())
	}
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	q := NewNormOpt(pmem.New(pmem.Config{RegionWords: 256, Regions: 1}).Region(0), 1)
	defer func() {
		if recover() == nil {
			t.Error("exhausted volatile allocator did not panic")
		}
	}()
	for i := uint64(0); i < 1000; i++ {
		q.Enqueue(0, i)
	}
}
