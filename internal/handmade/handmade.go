// Package handmade implements the two hand-made persistent lock-free queues
// that Fig. 5 of the paper compares against: FHMP (Friedman, Herlihy,
// Marathe, Petrank — PPoPP 2018) and NormOpt (Ben-David, Blelloch, Friedman,
// Wei — SPAA 2019).
//
// Both are Michael-Scott queues whose shared words live in persistent
// memory and are mutated with CAS, following the Izraelevitz et al. recipe
// of a pwb per mutated location ordered by fences. The per-operation fence
// counts follow the paper: FHMP issues 2 pfences per enqueue and 4 per
// dequeue (it durably records dequeued values for exactly-once recovery);
// NormOpt's normalized construction gets by with 2/2.
//
// As in the paper's evaluation, both queues use a *volatile* allocator
// (libvmmalloc there; a volatile bump+free-list here): allocation costs no
// flushes, but all allocator metadata is lost on a crash, leaving the queues
// "inconsistent and unusable" after a failure — which is exactly the
// argument the paper makes for integrated persistent allocation. These
// queues therefore have no recovery procedure.
package handmade

import (
	"sync/atomic"

	"repro/internal/pmem"
)

// Queue header words within the region.
const (
	qHead = 0
	qTail = 1
	// retBase is where FHMP's per-thread returned-value slots start.
	retBase = 8
)

// Node layout: [value, next, deqTid].
const nodeWords = 8 // line-aligned so node flushes are a single pwb

// vAlloc is the volatile allocator: a bump pointer plus per-thread pools of
// released nodes kept in ordinary Go memory (so its state vanishes on a
// crash, like libvmmalloc). Reuse is delayed — a node is recycled only after
// reuseDelay other nodes were released by the same thread — standing in for
// the hazard-pointer reclamation of the originals: it makes the classic
// Michael-Scott ABA (a node re-entering the queue at the same address while
// a stalled dequeuer still holds it) practically impossible.
type vAlloc struct {
	bump  atomic.Uint64
	limit uint64
	pools [][]uint64 // FIFO per thread; owner-only access
	heads []int
}

const reuseDelay = 1024

func newVAlloc(start, limit uint64, threads int) *vAlloc {
	a := &vAlloc{
		limit: limit,
		pools: make([][]uint64, threads),
		heads: make([]int, threads),
	}
	a.bump.Store(start)
	return a
}

func (a *vAlloc) alloc(tid int) uint64 {
	if h := a.heads[tid]; len(a.pools[tid])-h > reuseDelay {
		addr := a.pools[tid][h]
		a.heads[tid] = h + 1
		if h > 1<<16 { // compact occasionally
			a.pools[tid] = append([]uint64(nil), a.pools[tid][h+1:]...)
			a.heads[tid] = 0
		}
		return addr
	}
	addr := a.bump.Add(nodeWords) - nodeWords
	if addr+nodeWords > a.limit {
		panic("handmade: volatile allocator exhausted")
	}
	return addr
}

func (a *vAlloc) release(tid int, addr uint64) {
	a.pools[tid] = append(a.pools[tid], addr)
}

// base is the common Michael-Scott machinery.
type base struct {
	region *pmem.Region
	alloc  *vAlloc
}

func newBase(region *pmem.Region, threads int) base {
	b := base{
		region: region,
		alloc:  newVAlloc(uint64(retBase+threads+nodeWords-1)/nodeWords*nodeWords, region.Words(), threads),
	}
	// Sentinel node.
	s := b.alloc.alloc(0)
	region.AtomicStore(s, 0)
	region.AtomicStore(s+1, 0)
	region.PWB(s)
	region.AtomicStore(qHead, s)
	region.AtomicStore(qTail, s)
	region.PWB(qHead)
	region.PFence()
	return b
}

// enqueue links a new node at the tail, issuing pwbs per the given recipe;
// fences are the caller's responsibility so FHMP and NormOpt can differ.
func (b *base) enqueueNode(tid int, v uint64) uint64 {
	n := b.alloc.alloc(tid)
	b.region.AtomicStore(n, v)
	b.region.AtomicStore(n+1, 0)
	b.region.AtomicStore(n+2, 0)
	b.region.PWB(n) // node content durable before it is reachable
	for {
		last := b.region.AtomicLoad(qTail)
		next := b.region.AtomicLoad(last + 1)
		if last != b.region.AtomicLoad(qTail) {
			continue
		}
		if next != 0 {
			// Help: persist the link and swing the tail.
			b.region.PWB(last + 1)
			b.region.CAS(qTail, last, next)
			continue
		}
		if b.region.CAS(last+1, 0, n) {
			b.region.PWB(last + 1)
			b.region.CAS(qTail, last, n)
			return n
		}
	}
}

// dequeueNode unlinks the head node, returning its value. The freed
// sentinel is recycled through the volatile allocator.
func (b *base) dequeueNode(tid int) (uint64, bool) {
	for {
		first := b.region.AtomicLoad(qHead)
		last := b.region.AtomicLoad(qTail)
		next := b.region.AtomicLoad(first + 1)
		if first != b.region.AtomicLoad(qHead) {
			continue
		}
		if next == 0 {
			return 0, false
		}
		if first == last {
			b.region.PWB(last + 1)
			b.region.CAS(qTail, last, next)
			continue
		}
		v := b.region.AtomicLoad(next)
		if b.region.CAS(qHead, first, next) {
			b.region.PWB(qHead)
			b.alloc.release(tid, first)
			return v, true
		}
	}
}

// Len walks the queue (tests only; not linearizable under concurrency).
func (b *base) Len() int {
	n := 0
	cur := b.region.AtomicLoad(b.region.AtomicLoad(qHead) + 1)
	for cur != 0 {
		n++
		cur = b.region.AtomicLoad(cur + 1)
	}
	return n
}

// FHMP is the Friedman et al. durable queue: 2 fences per enqueue, 4 per
// dequeue (the extra pair persists the dequeued value in the caller's
// returned-value slot and the node's dequeuer mark).
type FHMP struct {
	base
	threads int
}

// NewFHMP creates an FHMP queue in region (which must be empty).
func NewFHMP(region *pmem.Region, threads int) *FHMP {
	return &FHMP{base: newBase(region, threads), threads: threads}
}

// Name labels the queue in benchmark output.
func (q *FHMP) Name() string { return "FHMP" }

// Enqueue appends v. Two pfences, as in the original.
func (q *FHMP) Enqueue(tid int, v uint64) {
	q.region.PFence() // order node flush before linking (fence 1)
	q.enqueueNode(tid, v)
	q.region.PFence() // link durable before returning (fence 2)
}

// Dequeue removes the head value. Four pfences, as in the original.
func (q *FHMP) Dequeue(tid int) (uint64, bool) {
	for {
		first := q.region.AtomicLoad(qHead)
		last := q.region.AtomicLoad(qTail)
		next := q.region.AtomicLoad(first + 1)
		if first != q.region.AtomicLoad(qHead) {
			continue
		}
		if next == 0 {
			return 0, false
		}
		if first == last {
			q.region.PWB(last + 1)
			q.region.PFence()
			q.region.CAS(qTail, last, next)
			continue
		}
		v := q.region.AtomicLoad(next)
		// Mark the node with the dequeuer's id and persist it (fences
		// 1 and 2): after a crash, the value is attributed exactly
		// once.
		if !q.region.CAS(next+2, 0, uint64(tid)+1) {
			// Another dequeuer claimed it; help persist and retry.
			q.region.PWB(next + 2)
			q.region.PFence()
			q.region.CAS(qHead, first, next)
			continue
		}
		q.region.PWB(next + 2)
		q.region.PFence()
		// Persist the returned value in the caller's slot (fence 2).
		q.region.AtomicStore(uint64(retBase+tid), v)
		q.region.PWB(uint64(retBase + tid))
		q.region.PFence()
		// Unlink and persist the new head (fences 3 and 4).
		q.region.CAS(qHead, first, next)
		q.region.PWB(qHead)
		q.region.PFence()
		q.region.PFence() // head swing ordered before reuse, as in the original
		q.alloc.release(tid, first)
		return v, true
	}
}

// NormOpt is the Ben-David et al. normalized durable queue: two fences per
// operation.
type NormOpt struct {
	base
}

// NewNormOpt creates a NormOpt queue in region (which must be empty).
func NewNormOpt(region *pmem.Region, threads int) *NormOpt {
	return &NormOpt{base: newBase(region, threads)}
}

// Name labels the queue in benchmark output.
func (q *NormOpt) Name() string { return "NormOpt" }

// Enqueue appends v with two fences.
func (q *NormOpt) Enqueue(tid int, v uint64) {
	q.region.PFence()
	q.enqueueNode(tid, v)
	q.region.PFence()
}

// Dequeue removes the head value with two fences.
func (q *NormOpt) Dequeue(tid int) (uint64, bool) {
	q.region.PFence()
	v, ok := q.dequeueNode(tid)
	q.region.PFence()
	return v, ok
}
