package handmade

import (
	"sync"
	"testing"
)

// TestRaceSmoke is a short high-contention workload meant for `go test
// -race`: concurrent producers and consumers on both hand-made queues,
// exercising the lock-free CAS paths, the per-thread allocators and FHMP's
// deliberate tail-flush elision. Coarse accounting only — the race detector
// is the real assertion.
func TestRaceSmoke(t *testing.T) {
	const threads, perThread = 4, 50
	for name, q := range queues(t, threads) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			var popped sync.Map
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for i := 0; i < perThread; i++ {
						q.Enqueue(tid, uint64(tid)<<32|uint64(i)+1)
						if v, ok := q.Dequeue(tid); ok {
							if _, dup := popped.LoadOrStore(v, true); dup {
								t.Errorf("value %d dequeued twice", v)
							}
						}
					}
				}(tid)
			}
			wg.Wait()
			// Drain: everything enqueued and not yet dequeued must come
			// out exactly once.
			for {
				v, ok := q.Dequeue(0)
				if !ok {
					break
				}
				if _, dup := popped.LoadOrStore(v, true); dup {
					t.Errorf("value %d dequeued twice during drain", v)
				}
			}
			count := 0
			popped.Range(func(_, _ any) bool { count++; return true })
			if count != threads*perThread {
				t.Fatalf("dequeued %d distinct values, want %d", count, threads*perThread)
			}
		})
	}
}
