package psim

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// newBenchEngine builds a single-thread PSim over a fresh pool with a small
// list set installed — the standard workload of the throughput benches.
func newBenchEngine(tr *obs.Tracer) (*PSim, *seqds.ListSet) {
	pool := pmem.New(pmem.Config{RegionWords: 1 << 14, Regions: 2})
	if tr != nil {
		pool.SetTracer(tr)
	}
	p := New(pool, Config{Threads: 1})
	set := &seqds.ListSet{RootSlot: 0}
	p.Update(0, func(m ptm.Mem) uint64 {
		set.Init(m)
		return 0
	})
	return p, set
}

// benchOps drives the hot path: add/remove a key so the working set stays
// constant and no run allocates more heap than the last.
func benchOps(b *testing.B, p *PSim, set *seqds.ListSet) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%64) + 1
		p.Update(0, func(m ptm.Mem) uint64 {
			if set.Add(m, k) {
				return 1
			}
			return 0
		})
		p.Update(0, func(m ptm.Mem) uint64 {
			if set.Remove(m, k) {
				return 1
			}
			return 0
		})
	}
}

// BenchmarkPSimUntraced is the disabled-tracing baseline: the pool has no
// tracer attached, so every persistence instruction pays exactly one nil
// check. The ISSUE acceptance bound is <2% overhead vs the pre-obs hot path;
// compare this benchmark against BenchmarkPSimTraced for the enabled cost:
//
//	go test -run xx -bench 'BenchmarkPSim' -count 10 ./internal/psim
func BenchmarkPSimUntraced(b *testing.B) {
	p, set := newBenchEngine(nil)
	b.ReportAllocs()
	benchOps(b, p, set)
}

// BenchmarkPSimTraced runs the same workload with a tracer attached; the
// delta over the untraced run is the full (enabled) tracing cost.
func BenchmarkPSimTraced(b *testing.B) {
	tr := obs.NewTracer(1 << 16)
	p, set := newBenchEngine(tr)
	b.ReportAllocs()
	benchOps(b, p, set)
}

// TestUntracedHotPathNoAlloc is the deterministic stand-in for the <2%
// overhead bound: with tracing disabled the engine's update path performs
// zero observability-related allocations, so the only added cost is the
// per-instruction nil check (measured by the benchmark pair above; timing is
// not asserted here because CI machines jitter far more than 2%).
func TestUntracedHotPathNoAlloc(t *testing.T) {
	p, set := newBenchEngine(nil)
	k := uint64(0)
	n := testing.AllocsPerRun(100, func() {
		k++
		kk := k%64 + 1
		p.Update(0, func(m ptm.Mem) uint64 {
			if set.Add(m, kk) {
				return 1
			}
			return 0
		})
		p.Update(0, func(m ptm.Mem) uint64 {
			if set.Remove(m, kk) {
				return 1
			}
			return 0
		})
	})
	// The update path allocates its descriptor pair and closure state; the
	// bound pins that attaching NO tracer adds nothing beyond that. Keep in
	// lockstep with TestTracedHotPathAllocDelta below.
	base := n
	tr := obs.NewTracer(1 << 20)
	p2, set2 := newBenchEngine(tr)
	n2 := testing.AllocsPerRun(100, func() {
		k++
		kk := k%64 + 1
		p2.Update(0, func(m ptm.Mem) uint64 {
			if set2.Add(m, kk) {
				return 1
			}
			return 0
		})
		p2.Update(0, func(m ptm.Mem) uint64 {
			if set2.Remove(m, kk) {
				return 1
			}
			return 0
		})
	})
	if n2 != base {
		t.Fatalf("tracing changed the allocation profile: untraced %.1f, traced %.1f allocs/op", base, n2)
	}
}
