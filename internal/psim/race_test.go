package psim

import (
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// TestRaceSmoke is a short high-contention workload meant for `go test
// -race`: concurrent updaters and readers share one engine, exercising the
// announce array, the CAS-published current-area switch and the
// copy-on-write path. It asserts only coarse correctness (no lost updates);
// the race detector is the real assertion.
func TestRaceSmoke(t *testing.T) {
	const threads, perThread = 4, 60
	p, _ := newP(t, threads, pmem.Direct)
	addr := ptm.RootAddr(0)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				p.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
				p.Read(tid, func(m ptm.Mem) uint64 { return m.Load(addr) })
			}
		}(tid)
	}
	wg.Wait()
	got := p.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) })
	if got != threads*perThread {
		t.Fatalf("counter = %d, want %d (lost updates)", got, threads*perThread)
	}
}
