package psim

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

func newP(t testing.TB, threads int, mode pmem.Mode) (*PSim, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, RegionWords: 1 << 15, Regions: 2})
	return New(pool, Config{Threads: threads}), pool
}

func TestNameAndProperties(t *testing.T) {
	p, _ := newP(t, 2, pmem.Direct)
	if p.Name() != "PSim-CoW" {
		t.Errorf("Name() = %q", p.Name())
	}
	pr := p.Properties()
	if pr.Progress != ptm.WaitFree || pr.FencesPerTx != "2" || pr.Replicas != "2" {
		t.Errorf("Properties() = %+v", pr)
	}
}

func TestCounter(t *testing.T) {
	p, _ := newP(t, 1, pmem.Direct)
	addr := ptm.RootAddr(0)
	for i := 0; i < 100; i++ {
		p.Update(0, func(m ptm.Mem) uint64 {
			v := m.Load(addr) + 1
			m.Store(addr, v)
			return v
		})
	}
	if got := p.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

func TestSetAgainstModel(t *testing.T) {
	p, _ := newP(t, 1, pmem.Direct)
	s := seqds.ListSet{RootSlot: 0}
	p.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	model := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 600; i++ {
		k := uint64(rng.Intn(100))
		switch rng.Intn(3) {
		case 0:
			p.Update(0, func(m ptm.Mem) uint64 {
				s.Add(m, k)
				return 0
			})
			model[k] = true
		case 1:
			p.Update(0, func(m ptm.Mem) uint64 {
				s.Remove(m, k)
				return 0
			})
			delete(model, k)
		default:
			got := p.Read(0, func(m ptm.Mem) uint64 {
				if s.Contains(m, k) {
					return 1
				}
				return 0
			})
			if (got == 1) != model[k] {
				t.Fatalf("Contains(%d) = %d, model %v", k, got, model[k])
			}
		}
	}
}

func TestConcurrentCounterExactlyOnce(t *testing.T) {
	const threads, per = 6, 200
	p, _ := newP(t, threads, pmem.Direct)
	addr := ptm.RootAddr(0)
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, threads)
	for tid := 0; tid < threads; tid++ {
		seen[tid] = make(map[uint64]bool)
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := p.Update(tid, func(m ptm.Mem) uint64 {
					v := m.Load(addr) + 1
					m.Store(addr, v)
					return v
				})
				seen[tid][r] = true
			}
		}(tid)
	}
	wg.Wait()
	if got := p.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != threads*per {
		t.Fatalf("counter = %d, want %d", got, threads*per)
	}
	all := make(map[uint64]bool)
	for _, s := range seen {
		for r := range s {
			if all[r] {
				t.Fatalf("result %d duplicated", r)
			}
			all[r] = true
		}
	}
}

func TestTwoFencesPerUpdateSingleThread(t *testing.T) {
	p, pool := newP(t, 1, pmem.Direct)
	addr := ptm.RootAddr(0)
	p.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 1); return 0 })
	before := pool.Stats()
	const n = 30
	for i := 0; i < n; i++ {
		p.Update(0, func(m ptm.Mem) uint64 {
			m.Store(addr, m.Load(addr)+1)
			return 0
		})
	}
	d := pool.Stats().Sub(before)
	if d.Fences() != 2*n {
		t.Fatalf("fences = %d, want %d", d.Fences(), 2*n)
	}
	// The CoW signature: pwbs per tx scale with the object, far above
	// the two words actually modified.
	if d.PWBs/n < 5 {
		t.Fatalf("pwbs/tx = %d — too low for whole-object CoW flushing", d.PWBs/n)
	}
}

func TestReadOnlyBatchDoesNotCopyOrFlush(t *testing.T) {
	p, pool := newP(t, 1, pmem.Direct)
	addr := ptm.RootAddr(0)
	p.Update(0, func(m ptm.Mem) uint64 { m.Store(addr, 9); return 0 })
	before := pool.Stats()
	for i := 0; i < 10; i++ {
		if got := p.Read(0, func(m ptm.Mem) uint64 { return m.Load(addr) }); got != 9 {
			t.Fatalf("Read = %d", got)
		}
	}
	if d := pool.Stats().Sub(before); d.PWBs != 0 || d.Fences() != 0 || d.WordsCopied != 0 {
		t.Fatalf("read-only rounds did persistence work: %+v", d)
	}
}

func runAddsUntilCrash(t *testing.T, pool *pmem.Pool, n int, failPoint int64) (completed int, crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if r != pmem.ErrSimulatedPowerFailure {
				panic(r)
			}
			crashed = true
		}
		pool.InjectFailure(-1)
	}()
	p := New(pool, Config{Threads: 1})
	s := seqds.ListSet{RootSlot: 0}
	p.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
	pool.InjectFailure(failPoint)
	for k := 0; k < n; k++ {
		p.Update(0, func(m ptm.Mem) uint64 {
			s.Add(m, uint64(k)+1)
			return 0
		})
		completed++
	}
	return completed, false
}

func TestSystematicCrashPoints(t *testing.T) {
	const n = 15
	for fail := int64(1); ; fail += 29 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 13, Regions: 2})
		completed, crashed := runAddsUntilCrash(t, pool, n, fail)
		if !crashed {
			if completed != n {
				t.Fatalf("no crash but %d/%d completed", completed, n)
			}
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		p := New(pool, Config{Threads: 1})
		s := seqds.ListSet{RootSlot: 0}
		keys := seqds.ReadSlice(p, 0, s.Keys)
		if len(keys) < completed || len(keys) > n {
			t.Fatalf("fail=%d: recovered %d keys, completed %d", fail, len(keys), completed)
		}
		for i, k := range keys {
			if k != uint64(i)+1 {
				t.Fatalf("fail=%d: not a prefix at %d", fail, i)
			}
		}
	}
}

func TestAdversarialCrashPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 12
	for fail := int64(1); ; fail += 37 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 13, Regions: 2})
		completed, crashed := runAddsUntilCrash(t, pool, n, fail)
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashAdversarial, rng)
		p := New(pool, Config{Threads: 1})
		s := seqds.ListSet{RootSlot: 0}
		keys := seqds.ReadSlice(p, 0, s.Keys)
		if len(keys) < completed {
			t.Fatalf("fail=%d: recovered %d keys, completed %d", fail, len(keys), completed)
		}
	}
}
