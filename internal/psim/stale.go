package psim

import "repro/internal/pmem"

// StaleRanges reports the area that committed state does not reach: the
// copy-on-write side the persisted header does not name. Recovery adopts
// only the named area, and the first combine after restart copies it over
// the other side before any load, so bit flips there must never surface.
// With no valid header nothing is committed and both areas are fair game.
func StaleRanges(pool *pmem.Pool) []pmem.Range {
	hdr := pool.PersistedHeader(headerSlot)
	cur := -1
	if hdr&1 != 0 {
		cur = int(hdr >> 1 & 1)
	}
	var ranges []pmem.Range
	for i := 0; i < pool.Regions(); i++ {
		if i != cur {
			ranges = append(ranges, pool.WholeRegion(i))
		}
	}
	return ranges
}
