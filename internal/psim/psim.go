// Package psim implements a P-Sim-style copy-on-write persistent universal
// construction (Fatourou & Kallimanis's highly-efficient wait-free universal
// construction, adapted to persistence). The paper's §1 splits wait-free
// universal constructions into two families — copy-on-write and
// queue-of-operations — and argues that CoW "is inefficient for large
// objects when converted to a persistent universal construction (PUC), due
// to the high number of pwb operations that must be executed for each cache
// line of the new object". This package makes that claim measurable.
//
// The construction: operations are announced in per-thread slots; the winner
// of a sequence CAS becomes the combiner (Herlihy's combining consensus, the
// same mechanism Redo-PTM builds on), copies the entire current object into
// the inactive area, applies every announced operation to the copy, flushes
// the *whole* copy, fences, and publishes the new area with a persisted
// header — two fences per combined batch, but O(object size) pwbs per
// transition, which is exactly the cost CX-PUC avoids by keeping per-replica
// cursors and Redo-PTM avoids with physical logs.
//
// Like CX-PUC it needs no store interposition and accepts closures.
package psim

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/palloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Header slot: area<<1 | valid. The named area is the current, fully
// durable object.
const headerSlot = 0

// desc is an announced operation.
type desc struct {
	fn       func(ptm.Mem) uint64
	readOnly bool
	result   atomic.Uint64
	applied  atomic.Bool
}

// PSim is the engine. The pool must have exactly 2 regions (the alternating
// object areas).
type PSim struct {
	cfg  Config
	pool *pmem.Pool
	area [2]*pmem.Region
	cur  atomic.Int32  // current area (volatile mirror of the header)
	seq  atomic.Uint64 // even = quiescent, odd = combining
	reqs []atomic.Pointer[desc]
}

// Config parameterizes the engine.
type Config struct {
	Threads int
	Profile *ptm.Profile
}

// New creates (or recovers) a PSim instance over pool.
func New(pool *pmem.Pool, cfg Config) *PSim {
	if cfg.Threads <= 0 {
		panic("psim: Threads must be positive")
	}
	if pool.Regions() != 2 {
		panic("psim: pool must have exactly 2 regions")
	}
	p := &PSim{
		cfg:  cfg,
		pool: pool,
		reqs: make([]atomic.Pointer[desc], cfg.Threads),
	}
	p.area[0], p.area[1] = pool.Region(0), pool.Region(1)
	pool.TraceEvent(obs.KindRecoveryBegin, -1, -1, 0, 0, 0)
	hdr := pool.PersistedHeader(headerSlot)
	if hdr&1 != 0 {
		// Null recovery: the header names a fully durable area. The
		// rewrite must still be flushed and fenced: HeaderStore only
		// updates the cached header image, and a later crash must not
		// be able to observe a stale shadow (redo and cx recovery fence
		// their header rewrites the same way).
		p.cur.Store(int32(hdr >> 1 & 1))
		pool.HeaderStore(headerSlot, hdr)
		pool.PWBHeader(headerSlot)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, headerSlot, 1, 0)
	} else {
		palloc.Format(rawMem{p.area[0]}, pool.RegionWords())
		meta := palloc.MetaWords(rawMem{p.area[0]})
		p.area[0].FlushRange(0, meta)
		p.area[0].PFence()
		pool.TraceEvent(obs.KindPublish, -1, 0, 0, meta, obs.PubHeap)
		pool.HeaderStore(headerSlot, 0<<1|1)
		pool.PWBHeader(headerSlot)
		pool.PSync()
		pool.TraceEvent(obs.KindHeaderPublish, -1, -1, headerSlot, 1, 0)
	}
	pool.TraceEvent(obs.KindRecoveryEnd, -1, -1, 0, 0, 0)
	return p
}

// MaxThreads implements ptm.PTM.
func (p *PSim) MaxThreads() int { return p.cfg.Threads }

// Name implements ptm.PTM.
func (p *PSim) Name() string { return "PSim-CoW" }

// Properties implements ptm.PTM: wait-free, two fences, but the log column
// is "none" — the whole object is the write-set.
func (p *PSim) Properties() ptm.Properties {
	return ptm.Properties{
		Log:         ptm.NoLog,
		Progress:    ptm.WaitFree,
		FencesPerTx: "2",
		Replicas:    "2",
	}
}

// Update implements ptm.PTM via the combining consensus.
func (p *PSim) Update(tid int, fn func(ptm.Mem) uint64) uint64 {
	txStart := now(p.cfg.Profile)
	d := &desc{fn: fn}
	p.reqs[tid].Store(d)
	for {
		if d.applied.Load() {
			p.cfg.Profile.AddTx(since(p.cfg.Profile, txStart))
			return d.result.Load()
		}
		s := p.seq.Load()
		if s%2 == 1 {
			runtime.Gosched()
			continue
		}
		if !p.seq.CompareAndSwap(s, s+1) {
			continue
		}
		p.combine(tid, s/2)
		p.seq.Store(s + 2)
		p.cfg.Profile.AddTx(since(p.cfg.Profile, txStart))
		return d.result.Load()
	}
}

// combine is the CoW transition: if the announced batch mutates, copy the
// object, apply the batch, flush everything, publish; a read-only batch
// runs directly on the stable current area. tid is the combiner's thread
// id and round the consensus round, both only used for trace events.
func (p *PSim) combine(tid int, round uint64) {
	p.pool.TraceEvent(obs.KindCombineBegin, tid, -1, 0, 0, round)
	from := int(p.cur.Load())
	src := p.area[from]
	hasWrite := false
	for t := 0; t < p.cfg.Threads; t++ {
		if d := p.reqs[t].Load(); d != nil && !d.applied.Load() && !d.readOnly {
			hasWrite = true
			break
		}
	}
	var dst *pmem.Region
	if hasWrite {
		dst = p.area[1-from]
		copyStart := now(p.cfg.Profile)
		used := palloc.UsedWords(rawMem{src})
		dst.CopyFrom(src, used)
		p.cfg.Profile.AddCopy(since(p.cfg.Profile, copyStart))
	}
	lambdaStart := now(p.cfg.Profile)
	for t := 0; t < p.cfg.Threads; t++ {
		d := p.reqs[t].Load()
		if d == nil || d.applied.Load() {
			continue
		}
		if d.readOnly {
			// Reads see the pre-batch state on the stable source
			// area (they linearize at the start of the round).
			d.result.Store(d.fn(roMem{src}))
		} else {
			d.result.Store(d.fn(rawMem{dst}))
		}
		d.applied.Store(true)
	}
	p.cfg.Profile.AddLambda(since(p.cfg.Profile, lambdaStart))
	if !hasWrite {
		p.pool.TraceEvent(obs.KindCombineEnd, tid, -1, 0, 0, 0)
		return
	}
	// Flush the entire new object — the CoW cost the paper calls out.
	flushStart := now(p.cfg.Profile)
	used := palloc.UsedWords(rawMem{dst})
	dst.FlushRange(0, used)
	dst.PFence()
	// The published range is the allocator's high-water mark — a value
	// only the execution knows, which is what makes this assertion
	// dynamic rather than static.
	p.pool.TraceEvent(obs.KindPublish, tid, 1-from, 0, used, obs.PubHeap)
	hdr := uint64(1-from)<<1 | 1
	p.pool.HeaderStore(headerSlot, hdr)
	p.pool.PWBHeader(headerSlot)
	p.pool.PSync()
	p.pool.TraceEvent(obs.KindHeaderPublish, tid, -1, headerSlot, 1, 0)
	p.pool.TraceEvent(obs.KindCurComb, tid, -1, headerSlot, 1, hdr)
	p.cfg.Profile.AddFlush(since(p.cfg.Profile, flushStart))
	p.cur.Store(int32(1 - from))
	p.pool.TraceEvent(obs.KindCombineEnd, tid, -1, 0, 0, 1)
}

// Read implements ptm.PTM: reads are announced and executed by a combiner
// on the stable area. Only combiners touch the areas, so no reader can race
// with an area being rewritten.
func (p *PSim) Read(tid int, fn func(ptm.Mem) uint64) uint64 {
	d := &desc{fn: fn, readOnly: true}
	p.reqs[tid].Store(d)
	for {
		if d.applied.Load() {
			return d.result.Load()
		}
		s := p.seq.Load()
		if s%2 == 1 {
			runtime.Gosched()
			continue
		}
		if p.seq.CompareAndSwap(s, s+1) {
			p.combine(tid, s/2)
			p.seq.Store(s + 2)
		}
	}
}

// rawMem is the direct, uninterposed view (CoW needs no tracking).
type rawMem struct {
	region *pmem.Region
}

func (m rawMem) Load(addr uint64) uint64   { return m.region.Load(addr) }
func (m rawMem) Store(addr, val uint64)    { m.region.Store(addr, val) }
func (m rawMem) Alloc(words uint64) uint64 { return palloc.Alloc(m, words) }
func (m rawMem) Free(addr uint64)          { palloc.Free(m, addr) }

// roMem rejects mutation inside read-only transactions.
type roMem struct {
	region *pmem.Region
}

func (m roMem) Load(addr uint64) uint64 { return m.region.Load(addr) }
func (m roMem) Store(addr, val uint64) {
	panic("psim: Store inside a read-only transaction")
}
func (m roMem) Alloc(words uint64) uint64 {
	panic("psim: Alloc inside a read-only transaction")
}
func (m roMem) Free(addr uint64) {
	panic("psim: Free inside a read-only transaction")
}

func now(p *ptm.Profile) time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

func since(p *ptm.Profile, t time.Time) time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(t)
}
