package redodb

import (
	"repro/internal/core/redo"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// StaleRanges reports the spans that committed state does not reach. RedoDB
// stores everything inside its engine's replica regions, so the stale set is
// exactly the engine's: every replica other than the one the persisted
// curComb names.
func StaleRanges(pool *pmem.Pool) []pmem.Range {
	return redo.StaleRanges(pool)
}

// validate sanity-checks the recovered map header inside a read transaction
// and panics with a typed *pmem.CorruptionError when the adopted replica is
// structurally implausible: a root pointing outside the region, a bucket
// count that is not a power of two, or a bucket array that overruns the
// heap. These can only arise from corruption — the map is created whole in
// one transaction and every later mutation is transactional.
func (db *DB) validate() {
	words := db.pool.RegionWords()
	db.eng.Read(0, func(m ptm.Mem) uint64 {
		hdr := m.Load(db.root)
		if hdr == 0 {
			return 0 // first open; Open formats next
		}
		if hdr+hdrCount >= words {
			panic(pmem.Corruptf("redodb", "map header at %d outside region of %d words", hdr, words))
		}
		nb := m.Load(hdr + hdrNB)
		buckets := m.Load(hdr + hdrBuckets)
		if nb < minBuckets || nb&(nb-1) != 0 {
			panic(pmem.Corruptf("redodb", "bucket count %d is not a power of two >= %d", nb, minBuckets))
		}
		if buckets == 0 || buckets+nb > words {
			panic(pmem.Corruptf("redodb", "bucket array [%d,%d) outside region of %d words", buckets, buckets+nb, words))
		}
		if count := m.Load(hdr + hdrCount); count > words {
			panic(pmem.Corruptf("redodb", "implausible key count %d for region of %d words", count, words))
		}
		return 0
	})
}
