package redodb

import "repro/internal/ptm"

// Session is a per-thread handle to the database. All methods are durable
// linearizable transactions with bounded wait-free progress.
type Session struct {
	db  *DB
	tid int

	// Optimistic-read scratch: parameters and result buffer for the
	// pre-bound getFn/hasFn closures, valid only for the duration of one
	// TryRead call on this session's goroutine. Announced closures must
	// never touch these — a stale helper could observe a later call's
	// values — which is why the contended fallbacks below clone instead.
	readKey  []byte
	readHash uint64
	readDst  []byte
	getFn    func(ptm.Mem) uint64
	hasFn    func(ptm.Mem) uint64
}

// Put stores (key, value), overwriting any previous value. The closure may
// be re-executed by helper threads, so key and value are snapshotted — into
// a single shared backing array, the method's only data allocation.
func (s *Session) Put(key, value []byte) {
	kv := make([]byte, len(key)+len(value))
	copy(kv, key)
	copy(kv[len(key):], value)
	k, v := kv[:len(key):len(key)], kv[len(key):]
	root := s.db.root
	s.db.eng.Update(s.tid, func(m ptm.Mem) uint64 {
		return putLocked(m, root, k, v)
	})
}

// getRead is the optimistic lookup bound to getFn at session creation.
func (s *Session) getRead(m ptm.Mem) uint64 {
	node, _, _ := findNode(m, s.db.root, s.readKey, s.readHash)
	if node == 0 {
		return 0
	}
	s.readDst = ptm.LoadBytesAppend(m, m.Load(node+ndVal), s.readDst)
	return 1
}

// hasRead is the optimistic membership probe bound to hasFn.
func (s *Session) hasRead(m ptm.Mem) uint64 {
	node, _, _ := findNode(m, s.db.root, s.readKey, s.readHash)
	if node == 0 {
		return 0
	}
	return 1
}

// Get returns the value stored under key, or (nil, false) if absent.
func (s *Session) Get(key []byte) ([]byte, bool) {
	val, ok := s.GetAppend(nil, key)
	if !ok {
		return nil, false
	}
	if val == nil {
		val = []byte{}
	}
	return val, true
}

// GetAppend appends the value stored under key to dst and returns the
// extended slice, plus whether the key was present (dst is returned
// unchanged when absent). With sufficient capacity in dst the uncontended
// path performs zero heap allocations — the value travels from persistent
// words straight into dst, with no intermediate clone or outbox copy.
func (s *Session) GetAppend(dst, key []byte) ([]byte, bool) {
	// Optimistic path: TryRead never announces the closure, so it may
	// alias key and dst through the session scratch fields.
	s.readKey, s.readHash, s.readDst = key, hashKey(key), dst
	res, ok := s.db.eng.TryRead(s.tid, s.getFn)
	out := s.readDst
	s.readKey, s.readDst = nil, nil
	if ok {
		return out, res == 1
	}
	// Contended: announce a helper-safe closure (clones the key, routes
	// the value through the executor outbox).
	k := append([]byte(nil), key...)
	root := s.db.root
	found, val := s.db.eng.ReadWithBytes(s.tid, func(m ptm.Mem) uint64 {
		node, _, _ := findNode(m, root, k, hashKey(k))
		if node == 0 {
			return 0
		}
		ptm.EmitBytes(m, ptm.LoadBytes(m, m.Load(node+ndVal)))
		return 1
	})
	if found == 0 {
		return dst, false
	}
	return append(dst, val...), true
}

// Has reports whether key is present, without materializing the value.
func (s *Session) Has(key []byte) bool {
	s.readKey, s.readHash = key, hashKey(key)
	res, ok := s.db.eng.TryRead(s.tid, s.hasFn)
	s.readKey = nil
	if ok {
		return res == 1
	}
	k := append([]byte(nil), key...)
	root := s.db.root
	return s.db.eng.Read(s.tid, func(m ptm.Mem) uint64 {
		node, _, _ := findNode(m, root, k, hashKey(k))
		if node == 0 {
			return 0
		}
		return 1
	}) == 1
}

// Delete removes key, reporting whether it was present.
func (s *Session) Delete(key []byte) bool {
	k := append([]byte(nil), key...)
	root := s.db.root
	return s.db.eng.Update(s.tid, func(m ptm.Mem) uint64 {
		return deleteLocked(m, root, k)
	}) == 1
}

// Len returns the number of keys.
func (s *Session) Len() uint64 {
	root := s.db.root
	return s.db.eng.Read(s.tid, func(m ptm.Mem) uint64 {
		return m.Load(m.Load(root) + hdrCount)
	})
}

// Write applies a batch of operations as one atomic durable transaction —
// the LevelDB WriteBatch semantics, here with serializable isolation.
func (s *Session) Write(b *WriteBatch) {
	ops := b.clone()
	root := s.db.root
	s.db.eng.Update(s.tid, func(m ptm.Mem) uint64 {
		for _, op := range ops {
			if op.del {
				deleteLocked(m, root, op.key)
			} else {
				putLocked(m, root, op.key, op.val)
			}
		}
		return 0
	})
}

// WriteTagged applies a batch like Write and, in the same atomic durable
// transaction, records tag in persistent root slot tagSlot. A multi-shard
// coordinator tags each shard's sub-batch with the batch sequence number:
// after a crash, the recovered tag tells exactly which sub-batches were
// already applied, making replay idempotent. The slot must be distinct from
// the map's RootSlot.
func (s *Session) WriteTagged(b *WriteBatch, tagSlot int, tag uint64) {
	ops := b.clone()
	root := s.db.root
	tagAddr := ptm.RootAddr(tagSlot)
	s.db.eng.Update(s.tid, func(m ptm.Mem) uint64 {
		for _, op := range ops {
			if op.del {
				deleteLocked(m, root, op.key)
			} else {
				putLocked(m, root, op.key, op.val)
			}
		}
		m.Store(tagAddr, tag)
		return 0
	})
}

// TagAt returns the tag last recorded in root slot tagSlot by WriteTagged
// (0 if never written).
func (s *Session) TagAt(tagSlot int) uint64 {
	tagAddr := ptm.RootAddr(tagSlot)
	return s.db.eng.Read(s.tid, func(m ptm.Mem) uint64 {
		return m.Load(tagAddr)
	})
}

// WriteBatch collects Put/Delete operations for atomic application.
type WriteBatch struct {
	ops []batchOp
}

type batchOp struct {
	key, val []byte
	del      bool
}

// Put queues an insertion/overwrite.
func (b *WriteBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key: append([]byte(nil), key...),
		val: append([]byte(nil), value...),
	})
}

// Delete queues a deletion.
func (b *WriteBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), del: true})
}

// Len reports the number of queued operations.
func (b *WriteBatch) Len() int { return len(b.ops) }

// Clear empties the batch for reuse. The elements are zeroed before the
// truncation: a plain b.ops[:0] would keep every queued key and value alive
// through the retained backing array for as long as the batch is reused.
func (b *WriteBatch) Clear() {
	clear(b.ops)
	b.ops = b.ops[:0]
}

// clone snapshots the operations; the transaction closure may be
// re-executed by helpers, so it must not alias caller-mutable state.
func (b *WriteBatch) clone() []batchOp {
	out := make([]batchOp, len(b.ops))
	copy(out, b.ops)
	return out
}
