package redodb

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/ptm"
)

// Iterator iterates a consistent, durable snapshot of the database in
// ascending key order — the iterator capability the paper added to the hash
// map for LevelDB/RocksDB API compatibility. The snapshot is taken by a
// single read transaction (reads in RedoOpt-PTM "have their own snapshot of
// the data"), serialized through the engine's byte-result channel, so later
// writes do not disturb an open iterator.
type Iterator struct {
	pairs []kv
	pos   int
}

type kv struct {
	key, val []byte
}

// NewIterator takes a snapshot and positions the iterator before the first
// key (call Next to advance, like LevelDB with SeekToFirst implied).
func (s *Session) NewIterator() *Iterator {
	root := s.db.root
	_, blob := s.db.eng.ReadWithBytes(s.tid, func(m ptm.Mem) uint64 {
		ptm.EmitBytes(m, serializeAll(m, root))
		return 0
	})
	return &Iterator{pairs: deserialize(blob), pos: -1}
}

// NewIteratorTagged takes a snapshot like NewIterator and additionally
// returns the WriteTagged tag from root slot tagSlot as observed by the SAME
// read transaction. A multi-shard merger uses the tag to decide whether the
// per-shard snapshots it collected are mutually consistent.
func (s *Session) NewIteratorTagged(tagSlot int) (*Iterator, uint64) {
	root := s.db.root
	tagAddr := ptm.RootAddr(tagSlot)
	tag, blob := s.db.eng.ReadWithBytes(s.tid, func(m ptm.Mem) uint64 {
		ptm.EmitBytes(m, serializeAll(m, root))
		return m.Load(tagAddr)
	})
	return &Iterator{pairs: deserialize(blob), pos: -1}, tag
}

// serializeAll walks the hash map and encodes every pair, sorted by key.
// It runs inside a read transaction and is deterministic, as required of
// closures that helpers may re-execute.
func serializeAll(m ptm.Mem, root uint64) []byte {
	hdr := m.Load(root)
	buckets := m.Load(hdr + hdrBuckets)
	nb := m.Load(hdr + hdrNB)
	pairs := make([]kv, 0, m.Load(hdr+hdrCount))
	for i := uint64(0); i < nb; i++ {
		for n := m.Load(buckets + i); n != 0; n = m.Load(n + ndNext) {
			pairs = append(pairs, kv{
				key: ptm.LoadBytes(m, m.Load(n+ndKey)),
				val: ptm.LoadBytes(m, m.Load(n+ndVal)),
			})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return bytes.Compare(pairs[i].key, pairs[j].key) < 0 })
	var size int
	for _, p := range pairs {
		size += 16 + len(p.key) + len(p.val)
	}
	blob := make([]byte, 0, size)
	var lenBuf [8]byte
	for _, p := range pairs {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p.key)))
		blob = append(blob, lenBuf[:]...)
		blob = append(blob, p.key...)
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p.val)))
		blob = append(blob, lenBuf[:]...)
		blob = append(blob, p.val...)
	}
	return blob
}

func deserialize(blob []byte) []kv {
	var pairs []kv
	for len(blob) >= 8 {
		kl := binary.LittleEndian.Uint64(blob)
		blob = blob[8:]
		key := blob[:kl]
		blob = blob[kl:]
		vl := binary.LittleEndian.Uint64(blob)
		blob = blob[8:]
		val := blob[:vl]
		blob = blob[vl:]
		pairs = append(pairs, kv{key: key, val: val})
	}
	return pairs
}

// Next advances the iterator, reporting whether a pair is available.
func (it *Iterator) Next() bool {
	if it.pos+1 >= len(it.pairs) {
		it.pos = len(it.pairs)
		return false
	}
	it.pos++
	return true
}

// Seek positions the iterator at the first key >= target, reporting whether
// such a key exists. Next continues from there.
func (it *Iterator) Seek(target []byte) bool {
	i := sort.Search(len(it.pairs), func(i int) bool {
		return bytes.Compare(it.pairs[i].key, target) >= 0
	})
	it.pos = i
	return i < len(it.pairs)
}

// Valid reports whether the iterator is positioned at a pair.
func (it *Iterator) Valid() bool { return it.pos >= 0 && it.pos < len(it.pairs) }

// Key returns the current key; only valid when Valid().
func (it *Iterator) Key() []byte { return it.pairs[it.pos].key }

// Value returns the current value; only valid when Valid().
func (it *Iterator) Value() []byte { return it.pairs[it.pos].val }

// Len reports the number of pairs in the snapshot.
func (it *Iterator) Len() int { return len(it.pairs) }
