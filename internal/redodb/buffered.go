package redodb

import (
	"sync"
	"time"

	"repro/internal/pmem"
)

// Buffered durability for RedoDB: the session-facing half of the engine's
// group-commit mode (see internal/core/redo/buffered.go for the crash-safety
// argument). Puts commit into the in-flight epoch and return immediately;
// durability arrives when the persister seals the epoch — one fence for the
// whole group — and advances the durable-epoch watermark. Callers choose
// their own consistency point:
//
//   - Session.Sync() blocks until the session's last operation is durable.
//   - Session.PutDurable / Session.WriteDurable are the synchronous escape
//     hatch (commit + Sync).
//   - Session.Watch(epoch) returns a channel closed once the watermark
//     reaches epoch — the async completion-notification API.
//
// The persister is either a background goroutine (Options.PersistEvery >= 0,
// default 200µs cadence) or caller-driven (PersistEvery < 0: each Sync or
// explicit DB.Persist seals the epoch on the calling thread — the mode the
// crash sweeps use, keeping instruction counts deterministic).

// defaultPersistEvery is the background persister cadence when unset.
const defaultPersistEvery = 200 * time.Microsecond

// watcher is one Watch/Sync registration: ch is closed when the durable
// watermark reaches epoch.
type watcher struct {
	epoch uint64
	ch    chan struct{}
}

// buffered is the DB-side buffered-durability state.
type buffered struct {
	persistMu sync.Mutex // serializes eng.Persist (single-caller contract)

	mu       sync.Mutex
	watchers []watcher // pending registrations, compacted in place

	kick chan struct{} // nudges the background persister
	stop chan struct{}
	done chan struct{}
}

// closedCh is the shared already-durable channel: Watch on a satisfied
// epoch returns it without allocating.
var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Buffered reports whether the DB runs in relaxed-durability mode.
func (db *DB) Buffered() bool { return db.buf != nil }

// DurableEpoch returns the durable-epoch watermark. Operations whose epoch
// (Session.LastEpoch) is at or below it survive any crash.
func (db *DB) DurableEpoch() uint64 { return db.eng.DurableSeq() }

// CommittedEpoch returns the in-flight epoch's tail.
func (db *DB) CommittedEpoch() uint64 { return db.eng.CommittedSeq() }

// Persist seals the in-flight epoch, waits for it to become durable on the
// calling thread, wakes satisfied watchers, and returns the new watermark.
// Safe to call concurrently with the background persister. In synchronous
// mode it is a no-op returning the watermark (always the committed tail).
func (db *DB) Persist() uint64 {
	if db.buf == nil {
		return db.eng.DurableSeq()
	}
	db.buf.persistMu.Lock()
	w := db.eng.Persist() // panics propagate (simulated power failure)
	db.buf.persistMu.Unlock()
	db.wake(w)
	return w
}

// wake closes every watcher channel satisfied by watermark w, recycling the
// registration slots in place: survivors compact to the front and the
// vacated tail is zeroed so no closed channel (or its waiters' memory) is
// retained through the backing array — the same retention class as
// WriteBatch.Clear, pinned by TestEpochWatcherSlotsRecycled.
func (db *DB) wake(w uint64) {
	b := db.buf
	b.mu.Lock()
	kept := b.watchers[:0]
	for _, wt := range b.watchers {
		if wt.epoch <= w {
			close(wt.ch)
		} else {
			kept = append(kept, wt)
		}
	}
	clear(b.watchers[len(kept):])
	b.watchers = kept
	b.mu.Unlock()
}

// watch registers interest in epoch, returning a channel closed once the
// watermark reaches it (the shared closed channel if it already has).
func (db *DB) watch(epoch uint64) <-chan struct{} {
	if db.eng.DurableSeq() >= epoch {
		return closedCh
	}
	b := db.buf
	b.mu.Lock()
	// Re-check under the lock: wake() holds it while closing, so a
	// registration that observes an older watermark here is guaranteed to
	// be seen by the persist that advances past it.
	if db.eng.DurableSeq() >= epoch {
		b.mu.Unlock()
		return closedCh
	}
	ch := make(chan struct{})
	b.watchers = append(b.watchers, watcher{epoch: epoch, ch: ch})
	b.mu.Unlock()
	return ch
}

// nudge wakes the background persister without blocking.
func (db *DB) nudge() {
	select {
	case db.buf.kick <- struct{}{}:
	default:
	}
}

// Close stops the background persister (after a final seal) and releases
// the DB's goroutine resources. A DB without a persister needs no Close.
func (db *DB) Close() {
	if db.buf == nil || db.buf.stop == nil {
		return
	}
	close(db.buf.stop)
	<-db.buf.done
	db.buf.stop = nil
}

// persistLoop is the background persister: it seals the in-flight epoch on
// a timer cadence and whenever a Sync nudges it. A simulated power failure
// parks the goroutine quietly — the harness is about to Crash the pool and
// reopen, and every pmem instruction would panic identically until it does.
func (db *DB) persistLoop(every time.Duration) {
	defer close(db.buf.done)
	defer func() {
		if r := recover(); r != nil && r != pmem.ErrSimulatedPowerFailure {
			panic(r)
		}
	}()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-db.buf.stop:
			db.Persist()
			return
		case <-db.buf.kick:
		case <-t.C:
		}
		db.Persist()
	}
}

// LastEpoch returns the epoch of the session's last completed operation —
// the argument Watch needs to wait for exactly this session's work.
func (s *Session) LastEpoch() uint64 { return s.db.eng.LastSeq(s.tid) }

// Watch returns a channel that is closed once the durable watermark reaches
// epoch. With a background persister the epoch seals within its cadence;
// in caller-driven mode the channel fires on the next Persist/Sync by any
// thread. Watch never blocks.
func (s *Session) Watch(epoch uint64) <-chan struct{} {
	if s.db.buf == nil {
		return closedCh // synchronous mode: everything committed is durable
	}
	return s.db.watch(epoch)
}

// Sync blocks until the session's last completed operation is durable: the
// buffered-durability consistency point. Concurrent Syncs share one epoch
// seal (group commit). A no-op in synchronous mode.
func (s *Session) Sync() {
	if s.db.buf == nil {
		return
	}
	target := s.db.eng.LastSeq(s.tid)
	if s.db.eng.DurableSeq() >= target {
		return
	}
	if s.db.buf.stop == nil {
		// Caller-driven mode: seal on this thread.
		s.db.Persist()
		return
	}
	ch := s.db.watch(target)
	s.db.nudge()
	<-ch
}

// PutDurable is the synchronous escape hatch: Put plus Sync, so the write
// is durable when it returns even in buffered mode.
func (s *Session) PutDurable(key, value []byte) {
	s.Put(key, value)
	s.Sync()
}

// WriteDurable applies the batch atomically and returns only once it is
// durable.
func (s *Session) WriteDurable(b *WriteBatch) {
	s.Write(b)
	s.Sync()
}
