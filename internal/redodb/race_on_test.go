//go:build race

package redodb

// raceEnabled reports whether the race detector is instrumenting this build;
// allocation-count pins skip under it (instrumentation allocates).
const raceEnabled = true
