package redodb

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/pmem"
)

// TestRecoverIsIdempotent recovers the same crashed pool repeatedly:
// RedoDB has null recovery, so reopening an already-recovered image must
// reproduce the same logical state and issue exactly the same persistence
// work each time (the nested-failure model).
func TestRecoverIsIdempotent(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 2})
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != pmem.ErrSimulatedPowerFailure {
					panic(r)
				}
				crashed = true
			}
			pool.InjectFailure(-1)
		}()
		s := Open(pool, Options{Threads: 1}).Session(0)
		pool.InjectFailure(300)
		for i := 0; i < 25; i++ {
			s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
		}
	}()
	if !crashed {
		t.Fatal("failure point never fired")
	}
	pool.Crash(pmem.CrashConservative, nil)
	var stats [3]pmem.StatsSnapshot
	var states [3][]string
	for i := range stats {
		pool.ResetStats()
		s := Open(pool, Options{Threads: 1}).Session(0)
		stats[i] = pool.Stats()
		for j := 0; j < 25; j++ {
			k := fmt.Sprintf("k%03d", j)
			if v, ok := s.Get([]byte(k)); ok {
				states[i] = append(states[i], fmt.Sprintf("%s=%x", k, v))
			}
		}
		pool.Crash(pmem.CrashConservative, nil)
	}
	if !reflect.DeepEqual(states[1], states[0]) || !reflect.DeepEqual(states[2], states[1]) {
		t.Fatalf("recovered state drifted across recoveries: %v / %v / %v",
			states[0], states[1], states[2])
	}
	if stats[1] != stats[2] {
		t.Fatalf("recovery work drifted: %+v vs %+v", stats[1], stats[2])
	}
}
