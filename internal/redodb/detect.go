package redodb

import (
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/ptm"
)

// Detectable operations (exactly-once semantics). Each method couples the
// operation with a receipt in the request-dedup table (internal/detect)
// INSIDE one durable transaction: the engine's redo-log commit is the single
// atomic commit point, so a crash persists both the operation and its
// receipt or neither. A retry of a committed request finds the receipt and
// is skipped — the operation's effect is applied exactly once no matter how
// many times a crashing or timing-out caller re-issues it — and WasApplied
// answers "did request (client, seq) commit?" after any crash.
//
// Contract: client ids are nonzero and each is driven by one caller at a
// time; seqs are nonzero and strictly increasing per client (retries re-use
// the seq of the request they retry). Re-using a seq for a *different*
// operation is detected via the receipt's result digest and panics.

// Operation tags folded into receipt digests.
const (
	opPut uint64 = iota + 1
	opDelete
	opBatch
)

// Detectable-update closure results.
const (
	detDup      uint64 = 0 // receipt found, operation skipped
	detApplied  uint64 = 1 // operation executed and receipted now
	detMismatch uint64 = 2 // receipt found but for a different operation
)

// finishDetectable translates a detectable-update result into the applied
// flag, emits the trace annotation, and rejects seq re-use.
func (s *Session) finishDetectable(res, client, seq uint64) bool {
	switch res {
	case detApplied:
		s.db.pool.TraceEvent(obs.KindReceipt, s.tid, -1, client, 0, seq)
		return true
	case detDup:
		s.db.pool.TraceEvent(obs.KindDedupHit, s.tid, -1, client, 0, seq)
		return false
	default:
		panic("redodb: request seq re-used for a different operation (client bug)")
	}
}

// checkReceipt implements the dedup probe inside a detectable transaction:
// detDup/detMismatch when a receipt exists, detApplied when the caller
// should execute the operation and record.
func checkReceipt(m ptm.Mem, dt detect.Table, client, seq, digest uint64) uint64 {
	d, applied := dt.Lookup(m, client, seq)
	if !applied {
		return detApplied
	}
	if d != 0 && d != digest {
		return detMismatch
	}
	return detDup
}

// PutDetectable stores (key, value) exactly once for request (client, seq).
// It reports whether this call applied the operation (false: a receipt from
// an earlier attempt was found and the store was skipped).
func (s *Session) PutDetectable(client, seq uint64, key, value []byte) bool {
	kv := make([]byte, len(key)+len(value))
	copy(kv, key)
	copy(kv[len(key):], value)
	k, v := kv[:len(key):len(key)], kv[len(key):]
	root := s.db.root
	dt := s.db.detect
	digest := detect.Digest(opPut, key, 0)
	res := s.db.eng.Update(s.tid, func(m ptm.Mem) uint64 {
		if r := checkReceipt(m, dt, client, seq, digest); r != detApplied {
			return r
		}
		putLocked(m, root, k, v)
		dt.Record(m, client, seq, digest)
		return detApplied
	})
	return s.finishDetectable(res, client, seq)
}

// DeleteDetectable removes key exactly once for request (client, seq),
// reporting whether this call applied the operation.
func (s *Session) DeleteDetectable(client, seq uint64, key []byte) bool {
	k := append([]byte(nil), key...)
	root := s.db.root
	dt := s.db.detect
	digest := detect.Digest(opDelete, key, 0)
	res := s.db.eng.Update(s.tid, func(m ptm.Mem) uint64 {
		if r := checkReceipt(m, dt, client, seq, digest); r != detApplied {
			return r
		}
		deleteLocked(m, root, k)
		dt.Record(m, client, seq, digest)
		return detApplied
	})
	return s.finishDetectable(res, client, seq)
}

// WriteDetectable applies a batch exactly once for request (client, seq):
// the whole batch and its receipt commit in one durable transaction.
func (s *Session) WriteDetectable(b *WriteBatch, client, seq uint64) bool {
	return s.writeDetectable(b.clone(), -1, 0, client, seq, BatchDigest(b))
}

// WriteTaggedDetectable is WriteDetectable with a WriteTagged-style shard
// tag in the same transaction: the sharded front-end's coordinator uses it
// on the receipt's home shard, so a roll-forward that replays the sub-batch
// (guarded by the tag) re-records the receipt atomically with it. digest
// must be the BatchDigest of the FULL cross-shard batch, not the sub-batch.
func (s *Session) WriteTaggedDetectable(b *WriteBatch, tagSlot int, tag, client, seq, digest uint64) bool {
	return s.writeDetectable(b.clone(), tagSlot, tag, client, seq, digest)
}

func (s *Session) writeDetectable(ops []batchOp, tagSlot int, tag, client, seq, digest uint64) bool {
	root := s.db.root
	dt := s.db.detect
	tagAddr := uint64(0)
	if tagSlot >= 0 {
		tagAddr = ptm.RootAddr(tagSlot)
	}
	res := s.db.eng.Update(s.tid, func(m ptm.Mem) uint64 {
		r := checkReceipt(m, dt, client, seq, digest)
		if r == detApplied {
			for _, op := range ops {
				if op.del {
					deleteLocked(m, root, op.key)
				} else {
					putLocked(m, root, op.key, op.val)
				}
			}
			dt.Record(m, client, seq, digest)
		}
		if r != detMismatch && tagAddr != 0 {
			// The tag advances even on a dedup hit: a roll-forward retry
			// of an already-receipted sub-batch must still mark the shard
			// applied, or recovery would replay it forever.
			m.Store(tagAddr, tag)
		}
		return r
	})
	return s.finishDetectable(res, client, seq)
}

// WasApplied reports whether request (client, seq) committed: true iff a
// detectable operation with that identity has a durable receipt (or was
// acked). This is the recovery question — after a crash or timeout the
// caller probes WasApplied before retrying.
func (s *Session) WasApplied(client, seq uint64) bool {
	dt := s.db.detect
	return s.db.eng.Read(s.tid, func(m ptm.Mem) uint64 {
		if dt.Applied(m, client, seq) {
			return 1
		}
		return 0
	}) == 1
}

// AckApplied advances the client's acked watermark: the caller promises it
// has consumed the results of every seq <= upto, letting the dedup table
// reclaim their receipts. One durable transaction; acking backwards is a
// no-op. WasApplied stays true for acked seqs.
func (s *Session) AckApplied(client, upto uint64) {
	dt := s.db.detect
	s.db.eng.Update(s.tid, func(m ptm.Mem) uint64 {
		dt.Ack(m, client, upto)
		return 0
	})
}

// DetectStats reports the client's exactly-once witness: total receipts ever
// recorded (applied operations), the highest receipted seq, and the acked
// watermark. Three independent durable-linearizable reads (a closure may be
// re-executed by helpers, so it cannot write through captured variables; each
// read returns one word instead).
func (s *Session) DetectStats(client uint64) (receipts, maxSeq, acked uint64) {
	dt := s.db.detect
	read := func(pick int) uint64 {
		return s.db.eng.Read(s.tid, func(m ptm.Mem) uint64 {
			r, mx, a := dt.Stats(m, client)
			switch pick {
			case 0:
				return r
			case 1:
				return mx
			default:
				return a
			}
		})
	}
	return read(0), read(1), read(2)
}

// BatchDigest fingerprints a batch's operations for its receipt: op kinds,
// keys and values folded in order, so a retry presenting different contents
// under the same (client, seq) is detectable.
func BatchDigest(b *WriteBatch) uint64 {
	h := detect.Digest(opBatch, nil, uint64(len(b.ops)))
	for _, op := range b.ops {
		tag := opPut
		if op.del {
			tag = opDelete
		}
		h ^= detect.Digest(tag, op.key, detect.Digest(0, op.val, h))
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}
