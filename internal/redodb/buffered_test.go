package redodb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/pmem"
)

// bufferedOpts is the caller-driven buffered configuration the crash tests
// use: no persister goroutine, so every pmem instruction count is
// deterministic and injected failures fire on the test's own goroutine.
var bufferedOpts = Options{Threads: 1, Buffered: true, PersistEvery: -1}

func bkey(i int) []byte { return []byte(fmt.Sprintf("k%03d", i)) }

// survivedPrefix returns how many of keys k000..k(n-1) are present, and
// fails the test if the surviving set is not a contiguous prefix — the one
// buffered-durability loss shape: a crash may truncate un-synced epochs
// from the tail but may never punch a gap into the commit order.
func survivedPrefix(t *testing.T, s *Session, n int) int {
	t.Helper()
	m := 0
	for i := 0; i < n; i++ {
		if s.Has(bkey(i)) {
			if i != m {
				t.Fatalf("gap loss: k%03d survived but k%03d did not", i, m)
			}
			m++
		}
	}
	return m
}

// TestBufferedSemantics covers the API contract in one caller-driven run:
// reads see un-persisted commits immediately, the watermark trails the
// committed epoch until Persist, Sync advances it exactly to the session's
// last epoch, and PutDurable is durable on return.
func TestBufferedSemantics(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 3})
	db := Open(pool, bufferedOpts)
	if !db.Buffered() {
		t.Fatal("DB not in buffered mode")
	}
	s := db.Session(0)
	base := db.DurableEpoch()
	for i := 0; i < 8; i++ {
		s.Put(bkey(i), []byte{byte(i)})
	}
	if got, want := s.LastEpoch(), db.CommittedEpoch(); got != want {
		t.Fatalf("LastEpoch %d != CommittedEpoch %d with a single writer", got, want)
	}
	if db.DurableEpoch() != base {
		t.Fatalf("watermark advanced to %d without a Persist", db.DurableEpoch())
	}
	if !s.Has(bkey(7)) {
		t.Fatal("read missed a committed (volatile) put")
	}
	s.Sync()
	if db.DurableEpoch() < s.LastEpoch() {
		t.Fatalf("Sync returned with watermark %d < last epoch %d", db.DurableEpoch(), s.LastEpoch())
	}
	s.PutDurable(bkey(8), []byte{8})
	if db.DurableEpoch() < s.LastEpoch() {
		t.Fatal("PutDurable returned before its epoch was durable")
	}
	b := &WriteBatch{}
	b.Put(bkey(9), []byte{9})
	b.Put(bkey(10), []byte{10})
	s.WriteDurable(b)
	if db.DurableEpoch() < s.LastEpoch() {
		t.Fatal("WriteDurable returned before its epoch was durable")
	}
}

// TestBufferedSuffixLossNeverGap crashes (both models) with a tail of
// un-synced puts in flight and asserts the recovered state is always a
// commit-order prefix that includes everything up to the last Sync.
func TestBufferedSuffixLossNeverGap(t *testing.T) {
	for _, policy := range []pmem.CrashPolicy{pmem.CrashConservative, pmem.CrashAdversarial} {
		policy := policy
		t.Run(fmt.Sprintf("policy-%d", policy), func(t *testing.T) {
			const synced, total = 10, 30
			pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 3})
			db := Open(pool, bufferedOpts)
			s := db.Session(0)
			for i := 0; i < synced; i++ {
				s.Put(bkey(i), []byte{byte(i)})
			}
			s.Sync()
			for i := synced; i < total; i++ {
				s.Put(bkey(i), []byte{byte(i)})
			}
			pool.Crash(policy, rand.New(rand.NewSource(42)))
			s2 := Open(pool, bufferedOpts).Session(0)
			m := survivedPrefix(t, s2, total)
			if m < synced {
				t.Fatalf("synced prefix lost: only %d of %d synced puts survived", m, synced)
			}
		})
	}
}

// TestBufferedWatch exercises the async completion-notification API in both
// persister modes: an already-durable epoch yields an immediately-closed
// channel, a future epoch's channel fires once the watermark reaches it,
// and a Watch never fires early.
func TestBufferedWatch(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 3})
	db := Open(pool, bufferedOpts)
	s := db.Session(0)
	s.Put(bkey(0), []byte{0})
	epoch := s.LastEpoch()
	ch := s.Watch(epoch)
	select {
	case <-ch:
		t.Fatal("watch fired before the epoch was durable")
	default:
	}
	db.Persist()
	select {
	case <-ch:
	default:
		t.Fatal("watch did not fire after Persist advanced past its epoch")
	}
	if ch2 := s.Watch(epoch); ch2 != nil {
		select {
		case <-ch2:
		default:
			t.Fatal("watch on an already-durable epoch must be closed immediately")
		}
	}
}

// TestBufferedPersisterGoroutine is the background-persister smoke (run
// under -race by ci.sh): with the default cadence goroutine running, Sync,
// PutDurable and Watch all complete, concurrent writers make progress, and
// Close drains cleanly after a final seal.
func TestBufferedPersisterGoroutine(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: 1 << 16, Regions: 4})
	db := Open(pool, Options{Threads: 2, Buffered: true, PersistEvery: 50 * time.Microsecond})
	defer db.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := db.Session(1)
		for i := 0; i < 200; i++ {
			s.Put(bkey(i%32), []byte{byte(i)})
			if i%16 == 0 {
				s.Sync()
			}
		}
		s.Sync()
	}()
	s := db.Session(0)
	for i := 0; i < 100; i++ {
		s.PutDurable(bkey(100+i%16), []byte{byte(i)})
	}
	<-s.Watch(s.LastEpoch())
	<-done
	if db.DurableEpoch() < s.LastEpoch() {
		t.Fatal("session epoch not durable after Sync/Watch")
	}
}

// TestEpochWatcherSlotsRecycled is the sealed-epoch scratch-reuse audit
// (the WriteBatch.Clear retention class, PR 5): watcher registrations for
// sealed epochs must be recycled in place — the backing array's vacated
// slots zeroed so closed channels are not retained, and the array itself
// reused across register/seal cycles instead of regrowing.
func TestEpochWatcherSlotsRecycled(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 3})
	db := Open(pool, bufferedOpts)
	s := db.Session(0)
	var capAfterFirst int
	for cycle := 0; cycle < 8; cycle++ {
		s.Put(bkey(cycle), []byte{byte(cycle)})
		epoch := s.LastEpoch()
		for k := 0; k < 16; k++ {
			s.Watch(epoch)
		}
		db.Persist()
		db.buf.mu.Lock()
		ws := db.buf.watchers
		if len(ws) != 0 {
			db.buf.mu.Unlock()
			t.Fatalf("cycle %d: %d watchers retained after their epoch sealed", cycle, len(ws))
		}
		full := ws[:cap(ws)]
		for i, w := range full {
			if w.ch != nil || w.epoch != 0 {
				db.buf.mu.Unlock()
				t.Fatalf("cycle %d: vacated watcher slot %d retains %+v (leaked channel)", cycle, i, w)
			}
		}
		db.buf.mu.Unlock()
		if cycle == 0 {
			capAfterFirst = cap(ws)
		} else if cap(ws) > capAfterFirst {
			t.Fatalf("watcher backing array regrew: cap %d after cycle 0, %d after cycle %d",
				capAfterFirst, cap(ws), cycle)
		}
	}
}

// TestRecoverIsIdempotentBuffered mirrors TestRecoverIsIdempotent for the
// buffered engine: a crash mid-workload (Puts interleaved with epoch
// seals), then repeated recoveries of the same image must reproduce the
// same logical state and identical persistence work each time.
func TestRecoverIsIdempotentBuffered(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 3})
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != pmem.ErrSimulatedPowerFailure {
					panic(r)
				}
				crashed = true
			}
			pool.InjectFailure(-1)
		}()
		db := Open(pool, bufferedOpts)
		s := db.Session(0)
		pool.InjectFailure(300)
		for i := 0; i < 25; i++ {
			s.Put(bkey(i), []byte{byte(i)})
			if (i+1)%4 == 0 {
				db.Persist()
			}
		}
	}()
	if !crashed {
		t.Fatal("failure point never fired")
	}
	pool.Crash(pmem.CrashConservative, nil)
	var stats [3]pmem.StatsSnapshot
	var states [3][]string
	for i := range stats {
		pool.ResetStats()
		s := Open(pool, bufferedOpts).Session(0)
		stats[i] = pool.Stats()
		for j := 0; j < 25; j++ {
			if v, ok := s.Get(bkey(j)); ok {
				states[i] = append(states[i], fmt.Sprintf("k%03d=%x", j, v))
			}
		}
		pool.Crash(pmem.CrashConservative, nil)
	}
	if !reflect.DeepEqual(states[1], states[0]) || !reflect.DeepEqual(states[2], states[1]) {
		t.Fatalf("recovered state drifted across recoveries: %v / %v / %v",
			states[0], states[1], states[2])
	}
	if stats[1] != stats[2] {
		t.Fatalf("recovery work drifted: %+v vs %+v", stats[1], stats[2])
	}
}

// TestBufferedWatermarkAdvanceRecrash sweeps an injected failure across
// every instruction of a watermark advance (the Persist protocol: seal,
// coalesced flush, fence, header store, write-back, psync) and, for each
// crash point, asserts the prefix invariant and that re-crashing recovery
// reaches a fixed point — same state, same persistence work, under both
// crash models.
func TestBufferedWatermarkAdvanceRecrash(t *testing.T) {
	const preSynced, total = 6, 12
	for _, policy := range []pmem.CrashPolicy{pmem.CrashConservative, pmem.CrashAdversarial} {
		policy := policy
		t.Run(fmt.Sprintf("policy-%d", policy), func(t *testing.T) {
			for point := int64(1); ; point++ {
				pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 14, Regions: 3})
				db := Open(pool, bufferedOpts)
				s := db.Session(0)
				for i := 0; i < preSynced; i++ {
					s.Put(bkey(i), []byte{byte(i)})
				}
				s.Sync()
				for i := preSynced; i < total; i++ {
					s.Put(bkey(i), []byte{byte(i)})
				}
				// Arm the injector for the watermark advance only: point
				// counts instructions inside this Persist call.
				crashed := false
				pool.InjectFailure(point)
				func() {
					defer func() {
						if r := recover(); r != nil {
							if r != pmem.ErrSimulatedPowerFailure {
								panic(r)
							}
							crashed = true
						}
						pool.InjectFailure(-1)
					}()
					db.Persist()
				}()
				if !crashed {
					// The whole advance fits below this point: sweep done.
					if point == 1 {
						t.Fatal("Persist issued no pmem instructions")
					}
					return
				}
				pool.Crash(policy, rand.New(rand.NewSource(point)))
				s2 := Open(pool, bufferedOpts).Session(0)
				m := survivedPrefix(t, s2, total)
				if m < preSynced {
					t.Fatalf("point %d: synced prefix lost (%d < %d)", point, m, preSynced)
				}
				// Re-crash during recovery must be a fixed point.
				pool.Crash(policy, rand.New(rand.NewSource(point+1)))
				var stats [2]pmem.StatsSnapshot
				var states [2]int
				for i := range stats {
					pool.ResetStats()
					s3 := Open(pool, bufferedOpts).Session(0)
					stats[i] = pool.Stats()
					states[i] = survivedPrefix(t, s3, total)
					pool.Crash(policy, rand.New(rand.NewSource(point+2)))
				}
				if states[0] != states[1] || stats[0] != stats[1] {
					t.Fatalf("point %d: recovery not a fixed point: %d/%d keys, %+v vs %+v",
						point, states[0], states[1], stats[0], stats[1])
				}
			}
		})
	}
}
