package redodb

import (
	"fmt"
	"testing"

	"repro/internal/core/redo"
	"repro/internal/pmem"
)

// bulkFeatures returns the RedoOpt feature set with the bulk-store path
// toggled — the same pair of configurations the value-size benchmark sweeps.
func bulkFeatures(bulk bool) *redo.Features {
	return &redo.Features{
		Funnel: true, StoreAgg: true, DeferFlush: true, NTCopy: true, Bulk: bulk,
	}
}

// pwbsPerPut runs a deterministic single-threaded fillrandom-style workload
// (distinct keys, fixed-size values) and reports the pool's pwbs per Put.
func pwbsPerPut(t *testing.T, bulk bool, valueSize, puts int) float64 {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: 1 << 17, Regions: 2})
	db := Open(pool, Options{Threads: 1, Features: bulkFeatures(bulk)})
	s := db.Session(0)
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte(i)
	}
	pool.ResetStats()
	for i := 0; i < puts; i++ {
		s.Put([]byte(fmt.Sprintf("key%06d", i)), val)
	}
	return float64(pool.Stats().PWBs) / float64(puts)
}

// TestBulkHalvesFlushTraffic is the live, deterministic form of the
// BENCH_pr5.json headline: with 1 KiB values the aggregated bulk log records
// must cut pwbs per transaction by at least 2x against the per-word ablation
// of the very same engine.
func TestBulkHalvesFlushTraffic(t *testing.T) {
	const valueSize, puts = 1024, 128
	bulk := pwbsPerPut(t, true, valueSize, puts)
	word := pwbsPerPut(t, false, valueSize, puts)
	if bulk <= 0 || word <= 0 {
		t.Fatalf("degenerate pwbs/put: bulk %.2f, word %.2f", bulk, word)
	}
	if word < 2*bulk {
		t.Errorf("1 KiB values: word path %.2f pwbs/put is not >= 2x bulk path %.2f",
			word, bulk)
	}
}

// TestBulkWordSameContents asserts the two paths are observationally
// identical: the same workload of variable-size puts, overwrites and deletes
// leaves both databases with exactly the same key-value contents.
func TestBulkWordSameContents(t *testing.T) {
	open := func(bulk bool) *Session {
		pool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: 1 << 16, Regions: 2})
		return Open(pool, Options{Threads: 1, Features: bulkFeatures(bulk)}).Session(0)
	}
	sb, sw := open(true), open(false)
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%03d", i%40)) }
	val := func(i int) []byte {
		v := make([]byte, (i*53)%300)
		for j := range v {
			v[j] = byte(i + 7*j)
		}
		return v
	}
	for i := 0; i < 200; i++ {
		switch {
		case i%11 == 10:
			sb.Delete(key(i))
			sw.Delete(key(i))
		default:
			sb.Put(key(i), val(i))
			sw.Put(key(i), val(i))
		}
	}
	if lb, lw := sb.Len(), sw.Len(); lb != lw {
		t.Fatalf("bulk db has %d keys, word db %d", lb, lw)
	}
	for i := 0; i < 40; i++ {
		vb, okb := sb.Get(key(i))
		vw, okw := sw.Get(key(i))
		if okb != okw {
			t.Fatalf("key %d: bulk present=%v, word present=%v", i, okb, okw)
		}
		if string(vb) != string(vw) {
			t.Fatalf("key %d: bulk %q != word %q", i, vb, vw)
		}
	}
}
