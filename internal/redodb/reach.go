package redodb

import (
	"encoding/json"
	"errors"

	"repro/internal/palloc"
	"repro/internal/ptm"
)

// heapRoots is the database's root enumerator for the allocator's
// reachability recovery (palloc.Recover): it visits every heap block the
// persistent state references — the map header, the bucket array, each
// node with its key and value blocks, and the dedup table's client index
// and records. Anything the enumerator does not reach is, by definition,
// leaked.
func (db *DB) heapRoots(m ptm.Mem) palloc.RootEnumerator {
	return func(visit func(uint64)) {
		if hdr := m.Load(db.root); hdr != 0 {
			visit(hdr)
			buckets, nb := m.Load(hdr+hdrBuckets), m.Load(hdr+hdrNB)
			visit(buckets)
			for i := uint64(0); i < nb; i++ {
				for n := m.Load(buckets + i); n != 0; n = m.Load(n + ndNext) {
					visit(n)
					visit(m.Load(n + ndKey))
					visit(m.Load(n + ndVal))
				}
			}
		}
		db.detect.Blocks(m, visit)
	}
}

// recoverHeap runs the allocator's reachability pass inside a transaction:
// blocks stranded between allocation and publication by a crash are
// reclaimed, drained spans are compacted, and the class lists are rebuilt.
// On a clean heap (every open after a clean shutdown, and every open under
// the legacy allocator) it stores nothing.
func (db *DB) recoverHeap() {
	db.eng.Update(0, func(m ptm.Mem) uint64 {
		palloc.Recover(memShim{m}, db.heapRoots(m))
		return 0
	})
}

// AllocStats returns the allocator's space breakdown (per-class occupancy,
// large/free pages, heap frontier) from a read transaction — the raw
// material of the Fig-8-style bytes-per-key figure. The breakdown leaves
// the transaction through the engine's byte-result channel, keeping the
// closure free of captured-variable writes (helpers may re-execute it).
func (db *DB) AllocStats() palloc.HeapStats {
	_, blob := db.eng.ReadWithBytes(0, func(m ptm.Mem) uint64 {
		b, err := json.Marshal(palloc.Stats(memShim{m}))
		if err != nil {
			panic(err)
		}
		ptm.EmitBytes(m, b)
		return 0
	})
	var st palloc.HeapStats
	if err := json.Unmarshal(blob, &st); err != nil {
		panic(err)
	}
	return st
}

// AllocReconcile audits the allocator against the database's reachable
// blocks without mutating anything: it returns an error if any allocated
// block is unreachable (a leak) or any reachable address is not a live
// block (corruption). Chaos sweeps call it after every post-crash
// recovery. Legacy-format heaps reconcile vacuously — the crash leak is
// the documented Fig-8 baseline behavior there.
func (db *DB) AllocReconcile() error {
	_, msg := db.eng.ReadWithBytes(0, func(m ptm.Mem) uint64 {
		if err := palloc.Reconcile(memShim{m}, db.heapRoots(m)); err != nil {
			ptm.EmitBytes(m, []byte(err.Error()))
		}
		return 0
	})
	if len(msg) == 0 {
		return nil
	}
	return errors.New(string(msg))
}
