package redodb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core/redo"
	"repro/internal/pmem"
)

func openDB(t testing.TB, threads int, mode pmem.Mode, words uint64) (*DB, *pmem.Pool) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, RegionWords: words, Regions: threads + 1})
	return Open(pool, Options{Threads: threads}), pool
}

func TestPutGetDelete(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<18)
	s := db.Session(0)
	if _, ok := s.Get([]byte("missing")); ok {
		t.Fatal("Get on empty DB found a key")
	}
	s.Put([]byte("alpha"), []byte("one"))
	s.Put([]byte("beta"), []byte("two"))
	if v, ok := s.Get([]byte("alpha")); !ok || string(v) != "one" {
		t.Fatalf("Get(alpha) = %q,%v", v, ok)
	}
	if v, ok := s.Get([]byte("beta")); !ok || string(v) != "two" {
		t.Fatalf("Get(beta) = %q,%v", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Overwrite.
	s.Put([]byte("alpha"), []byte("uno"))
	if v, _ := s.Get([]byte("alpha")); string(v) != "uno" {
		t.Fatalf("after overwrite Get(alpha) = %q", v)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after overwrite = %d, want 2", s.Len())
	}
	if !s.Delete([]byte("alpha")) {
		t.Fatal("Delete(alpha) = false")
	}
	if s.Delete([]byte("alpha")) {
		t.Fatal("double Delete(alpha) = true")
	}
	if _, ok := s.Get([]byte("alpha")); ok {
		t.Fatal("Get after Delete found the key")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestEmptyValueAndBinaryKeys(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<18)
	s := db.Session(0)
	s.Put([]byte{0, 1, 2, 255}, []byte{})
	v, ok := s.Get([]byte{0, 1, 2, 255})
	if !ok || len(v) != 0 {
		t.Fatalf("binary key with empty value: %v,%v", v, ok)
	}
	if !s.Has([]byte{0, 1, 2, 255}) {
		t.Fatal("Has = false")
	}
}

func TestAgainstModel(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<21)
	s := db.Session(0)
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(400))
		switch rng.Intn(4) {
		case 0, 1:
			v := fmt.Sprintf("val-%d", i)
			s.Put([]byte(k), []byte(v))
			model[k] = v
		case 2:
			got := s.Delete([]byte(k))
			_, want := model[k]
			if got != want {
				t.Fatalf("op %d: Delete(%s) = %v, want %v", i, k, got, want)
			}
			delete(model, k)
		case 3:
			got, ok := s.Get([]byte(k))
			want, wok := model[k]
			if ok != wok || (ok && string(got) != want) {
				t.Fatalf("op %d: Get(%s) = %q,%v, want %q,%v", i, k, got, ok, want, wok)
			}
		}
	}
	if int(s.Len()) != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
}

func TestResizeKeepsEverything(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<22)
	s := db.Session(0)
	const n = 5000 // far beyond minBuckets, forcing several grows
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < n; i++ {
		v, ok := s.Get([]byte(fmt.Sprintf("k%06d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d lost across resize: %q,%v", i, v, ok)
		}
	}
}

func TestWriteBatchIsAtomic(t *testing.T) {
	const threads = 4
	db, _ := openDB(t, threads, pmem.Direct, 1<<20)
	init := db.Session(0)
	init.Put([]byte("acct-a"), []byte{100})
	init.Put([]byte("acct-b"), []byte{0})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s := db.Session(tid)
			for i := 0; i < 100; i++ {
				// Move one unit between accounts atomically; the
				// batch gets both puts or neither.
				b := &WriteBatch{}
				b.Put([]byte("acct-a"), []byte{byte(i)})
				b.Put([]byte("acct-b"), []byte{100 - byte(i)})
				s.Write(b)
			}
		}(tid)
	}
	wg.Wait()
	s := db.Session(0)
	a, _ := s.Get([]byte("acct-a"))
	b, _ := s.Get([]byte("acct-b"))
	if int(a[0])+int(b[0]) != 100 {
		t.Fatalf("invariant broken: a=%d b=%d", a[0], b[0])
	}
}

func TestWriteBatchDelete(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<18)
	s := db.Session(0)
	s.Put([]byte("x"), []byte("1"))
	b := &WriteBatch{}
	b.Delete([]byte("x"))
	b.Put([]byte("y"), []byte("2"))
	if b.Len() != 2 {
		t.Fatalf("batch Len = %d", b.Len())
	}
	s.Write(b)
	if _, ok := s.Get([]byte("x")); ok {
		t.Fatal("x survived batch delete")
	}
	if v, ok := s.Get([]byte("y")); !ok || string(v) != "2" {
		t.Fatal("y missing after batch")
	}
	b.Clear()
	if b.Len() != 0 {
		t.Fatal("Clear did not empty the batch")
	}
}

func TestConcurrentSessions(t *testing.T) {
	const threads, per = 6, 300
	db, _ := openDB(t, threads, pmem.Direct, 1<<22)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s := db.Session(tid)
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("t%d-k%d", tid, i))
				s.Put(k, []byte(fmt.Sprintf("v%d", i)))
				if v, ok := s.Get(k); !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Errorf("thread %d: read-own-write failed for %s", tid, k)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	if got := db.Session(0).Len(); got != threads*per {
		t.Fatalf("Len = %d, want %d", got, threads*per)
	}
}

func TestConcurrentGetDuringWrites(t *testing.T) {
	// Readers hammer Get while writers overwrite: every returned value
	// must be one that some writer wrote (never torn).
	const writers, readers = 2, 4
	db, _ := openDB(t, writers+readers, pmem.Direct, 1<<20)
	key := []byte("hot")
	db.Session(0).Put(key, []byte("w0-0"))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s := db.Session(tid)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					s.Put(key, []byte(fmt.Sprintf("w%d-%d", tid, i)))
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s := db.Session(tid)
			for i := 0; i < 300; i++ {
				v, ok := s.Get(key)
				if !ok {
					t.Errorf("hot key disappeared")
					return
				}
				if len(v) < 4 || v[0] != 'w' {
					t.Errorf("torn value %q", v)
					return
				}
			}
		}(writers + r)
	}
	// Readers finish, then writers stop.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for r := 0; r < readers; r++ {
	}
	close(stop)
	<-done
}

func TestIterator(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<20)
	s := db.Session(0)
	keys := []string{"delta", "alpha", "charlie", "echo", "bravo"}
	for i, k := range keys {
		s.Put([]byte(k), []byte(fmt.Sprintf("v%d", i)))
	}
	it := s.NewIterator()
	if it.Len() != len(keys) {
		t.Fatalf("iterator Len = %d, want %d", it.Len(), len(keys))
	}
	var got []string
	for it.Next() {
		got = append(got, string(it.Key()))
	}
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order %v, want %v", got, want)
		}
	}
	if it.Valid() {
		t.Fatal("iterator valid after exhaustion")
	}
	// Seek.
	if !it.Seek([]byte("c")) {
		t.Fatal("Seek(c) found nothing")
	}
	if string(it.Key()) != "charlie" {
		t.Fatalf("Seek(c) at %q, want charlie", it.Key())
	}
	if it.Seek([]byte("zzz")) {
		t.Fatal("Seek(zzz) found a key")
	}
}

func TestIteratorIsSnapshot(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<20)
	s := db.Session(0)
	s.Put([]byte("a"), []byte("1"))
	it := s.NewIterator()
	s.Put([]byte("b"), []byte("2"))
	s.Delete([]byte("a"))
	if it.Len() != 1 {
		t.Fatalf("snapshot sees %d keys, want 1", it.Len())
	}
	it.Next()
	if string(it.Key()) != "a" || string(it.Value()) != "1" {
		t.Fatalf("snapshot pair = %q:%q", it.Key(), it.Value())
	}
}

func TestNVMUsageGrowsAndShrinks(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<20)
	s := db.Session(0)
	base := db.NVMUsedBytes()
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{7}, 64))
	}
	grown := db.NVMUsedBytes()
	if grown <= base {
		t.Fatalf("NVM usage did not grow: %d -> %d", base, grown)
	}
	for i := 0; i < 500; i++ {
		s.Delete([]byte(fmt.Sprintf("k%d", i)))
	}
	if got := db.NVMUsedBytes(); got >= grown {
		t.Fatalf("NVM usage did not shrink after deletes: %d -> %d", grown, got)
	}
}

func TestCrashRecoveryKeepsCommittedPairs(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 18, Regions: 2})
	db := Open(pool, Options{Threads: 1})
	s := db.Session(0)
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	pool.Crash(pmem.CrashConservative, nil)
	db2 := Open(pool, Options{Threads: 1})
	s2 := db2.Session(0)
	if s2.Len() != 50 {
		t.Fatalf("recovered %d keys, want 50", s2.Len())
	}
	for i := 0; i < 50; i++ {
		v, ok := s2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d lost or corrupt after crash: %q,%v", i, v, ok)
		}
	}
	// Null recovery: immediately writable.
	s2.Put([]byte("post"), []byte("crash"))
	if v, ok := s2.Get([]byte("post")); !ok || string(v) != "crash" {
		t.Fatal("post-recovery Put/Get broken")
	}
}

func TestSystematicCrashPoints(t *testing.T) {
	const n = 15
	for fail := int64(50); ; fail += 211 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 18, Regions: 2})
		completed, crashed := 0, false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrSimulatedPowerFailure {
						panic(r)
					}
					crashed = true
				}
				pool.InjectFailure(-1)
			}()
			db := Open(pool, Options{Threads: 1})
			s := db.Session(0)
			pool.InjectFailure(fail)
			for i := 0; i < n; i++ {
				s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte{byte(i)})
				completed++
			}
		}()
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		db := Open(pool, Options{Threads: 1})
		s := db.Session(0)
		for i := 0; i < completed; i++ {
			v, ok := s.Get([]byte(fmt.Sprintf("k%02d", i)))
			if !ok || v[0] != byte(i) {
				t.Fatalf("fail=%d: completed Put %d lost", fail, i)
			}
		}
	}
}

func TestSessionValidation(t *testing.T) {
	db, _ := openDB(t, 2, pmem.Direct, 1<<16)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range session id did not panic")
		}
	}()
	db.Session(2)
}

func TestVariantOverride(t *testing.T) {
	pool := pmem.New(pmem.Config{RegionWords: 1 << 16, Regions: 2})
	db := Open(pool, Options{Threads: 1, Variant: redo.Timed})
	if got := db.Engine().Name(); got != "RedoTimed-PTM" {
		t.Fatalf("engine = %s, want RedoTimed-PTM", got)
	}
}
