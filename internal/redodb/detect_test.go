package redodb

import (
	"fmt"
	"testing"

	"repro/internal/pmem"
)

func TestDetectablePutDeleteDedup(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<18)
	s := db.Session(0)
	const client = 1

	if s.WasApplied(client, 1) {
		t.Fatal("WasApplied true before any operation")
	}
	if !s.PutDetectable(client, 1, []byte("k"), []byte("v1")) {
		t.Fatal("first PutDetectable reported dedup")
	}
	if !s.WasApplied(client, 1) {
		t.Fatal("WasApplied false after commit")
	}
	// A retry of the same request is skipped and changes nothing.
	if s.PutDetectable(client, 1, []byte("k"), []byte("v1")) {
		t.Fatal("retried PutDetectable applied twice")
	}
	if v, _ := s.Get([]byte("k")); string(v) != "v1" {
		t.Fatalf("value %q after retry", v)
	}

	if !s.PutDetectable(client, 2, []byte("k"), []byte("v2")) {
		t.Fatal("seq 2 reported dedup")
	}
	if !s.DeleteDetectable(client, 3, []byte("k")) {
		t.Fatal("first DeleteDetectable reported dedup")
	}
	if s.DeleteDetectable(client, 3, []byte("k")) {
		t.Fatal("retried DeleteDetectable applied twice")
	}
	if s.Has([]byte("k")) {
		t.Fatal("key survived detectable delete")
	}

	if r, mx, a := s.DetectStats(client); r != 3 || mx != 3 || a != 0 {
		t.Fatalf("DetectStats = (%d, %d, %d), want (3, 3, 0)", r, mx, a)
	}
	s.AckApplied(client, 3)
	if !s.WasApplied(client, 2) {
		t.Fatal("WasApplied false for acked seq")
	}
	if r, mx, a := s.DetectStats(client); r != 3 || mx != 3 || a != 3 {
		t.Fatalf("DetectStats after ack = (%d, %d, %d), want (3, 3, 3)", r, mx, a)
	}
}

func TestDetectableBatchDedup(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<18)
	s := db.Session(0)
	const client = 9

	b := &WriteBatch{}
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	b.Delete([]byte("z"))
	if !s.WriteDetectable(b, client, 1) {
		t.Fatal("first WriteDetectable reported dedup")
	}
	if s.WriteDetectable(b, client, 1) {
		t.Fatal("retried WriteDetectable applied twice")
	}
	if v, _ := s.Get([]byte("x")); string(v) != "1" {
		t.Fatalf("x = %q", v)
	}
	if r, _, _ := s.DetectStats(client); r != 1 {
		t.Fatalf("receipts = %d, want 1 (batch is one request)", r)
	}
}

func TestDetectableSeqReusePanics(t *testing.T) {
	db, _ := openDB(t, 1, pmem.Direct, 1<<18)
	s := db.Session(0)
	s.PutDetectable(1, 1, []byte("a"), []byte("v"))
	defer func() {
		if recover() == nil {
			t.Fatal("seq re-use for a different operation did not panic")
		}
	}()
	s.PutDetectable(1, 1, []byte("DIFFERENT"), []byte("v"))
}

func TestDetectableDistinctClients(t *testing.T) {
	db, _ := openDB(t, 2, pmem.Direct, 1<<18)
	a, b := db.Session(0), db.Session(1)
	// The same seq from different clients is two independent requests.
	if !a.PutDetectable(10, 1, []byte("k10"), []byte("a")) {
		t.Fatal("client 10 deduplicated")
	}
	if !b.PutDetectable(20, 1, []byte("k20"), []byte("b")) {
		t.Fatal("client 20 deduplicated against client 10")
	}
	if a.WasApplied(10, 2) || b.WasApplied(20, 2) {
		t.Fatal("unissued seq reported applied")
	}
}

// TestDetectableCrashExactlyOnce sweeps power failures across a stream of
// detectable puts, then lets the client run its recovery protocol: probe
// WasApplied for every issued request and retry the unapplied ones. The
// database must end complete, with the receipt count proving each request
// was applied exactly once no matter where the crash landed — the request
// and its receipt commit at one atomic point, so the probe can never lie in
// either direction.
func TestDetectableCrashExactlyOnce(t *testing.T) {
	const ops = 12
	const client = 5
	key := func(i uint64) []byte { return []byte(fmt.Sprintf("dk%02d", i)) }
	val := func(i uint64) []byte { return []byte(fmt.Sprintf("dv%02d", i)) }
	for fail := int64(20); ; fail += 91 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 16, Regions: 2})
		crashed := false
		acked := uint64(0)
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrSimulatedPowerFailure {
						panic(r)
					}
					crashed = true
				}
				pool.InjectFailure(-1)
			}()
			s := Open(pool, Options{Threads: 1}).Session(0)
			pool.InjectFailure(fail)
			for i := uint64(1); i <= ops; i++ {
				s.PutDetectable(client, i, key(i), val(i))
				if i%5 == 0 {
					s.AckApplied(client, i)
					acked = i
				}
			}
		}()
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		s := Open(pool, Options{Threads: 1}).Session(0)

		// Crash-recovery probe: acked seqs must have survived; an applied
		// probe must be backed by the key actually being present.
		for i := uint64(1); i <= acked; i++ {
			if !s.WasApplied(client, i) {
				t.Fatalf("fail=%d: acked seq %d lost its receipt", fail, i)
			}
		}
		for i := uint64(1); i <= ops; i++ {
			if s.WasApplied(client, i) {
				if v, ok := s.Get(key(i)); !ok || string(v) != string(val(i)) {
					t.Fatalf("fail=%d: seq %d receipted but key %q = %q,%v",
						fail, i, key(i), v, ok)
				}
			}
		}

		// Client retry storm: re-issue everything; dedup must skip exactly
		// the receipted requests.
		for i := uint64(1); i <= ops; i++ {
			pre := s.WasApplied(client, i)
			appliedNow := s.PutDetectable(client, i, key(i), val(i))
			if appliedNow == pre {
				// The retry applies iff no receipt existed — anything else
				// is a lost receipt or a double apply.
				t.Fatalf("fail=%d: retry of seq %d applied=%v with prior receipt=%v",
					fail, i, appliedNow, pre)
			}
		}
		for i := uint64(1); i <= ops; i++ {
			if v, ok := s.Get(key(i)); !ok || string(v) != string(val(i)) {
				t.Fatalf("fail=%d: after retries key %q = %q,%v", fail, key(i), v, ok)
			}
			if !s.WasApplied(client, i) {
				t.Fatalf("fail=%d: after retries seq %d unreceipted", fail, i)
			}
		}
		// Exactly-once witness: one receipt per request, never two.
		if r, mx, _ := s.DetectStats(client); r != ops || mx != ops {
			t.Fatalf("fail=%d: receipts=%d maxSeq=%d, want %d each", fail, r, mx, ops)
		}
	}
}
