package redodb

import (
	"testing"

	"repro/internal/pmem"
)

func allocTestSession() *Session {
	pool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: 1 << 16, Regions: 2})
	db := Open(pool, Options{Threads: 1})
	return db.Session(0)
}

// TestHotPathAllocations pins the heap-allocation budget of the session hot
// paths. GetAppend and Has are the headline: on the uncontended optimistic
// path the value travels from persistent words straight into the caller's
// buffer with zero allocations. Get adds exactly its fresh result slice, and
// Put its snapshotted key+value backing array plus the transaction closure —
// both are the price of helper-safe closures, nothing else.
func TestHotPathAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the measured paths")
	}
	s := allocTestSession()
	key := []byte("alloc-key")
	val := make([]byte, 1024)
	for i := range val {
		val[i] = byte(i)
	}
	// Warm the engine: the state ring's log-chunk chains and aggregation
	// maps grow on first use and are retained, so they must not be charged
	// to the steady-state budget.
	for i := 0; i < 300; i++ {
		s.Put(key, val)
	}

	dst := make([]byte, 0, 2048)
	if a := testing.AllocsPerRun(200, func() {
		dst, _ = s.GetAppend(dst[:0], key)
	}); a != 0 {
		t.Errorf("GetAppend with capacity: %.1f allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		s.Has(key)
	}); a != 0 {
		t.Errorf("Has: %.1f allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		s.Get(key)
	}); a > 1 {
		t.Errorf("Get: %.1f allocs/op, want <= 1", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		s.Put(key, val)
	}); a > 2 {
		t.Errorf("Put: %.1f allocs/op, want <= 2", a)
	}
}

// TestHotPathAllocationsBuffered pins the same steady-state budgets in
// buffered mode, plus the persister's own seal path. The DB runs
// caller-driven (no persister goroutine) so AllocsPerRun — which counts
// process-global mallocs — sees only the measured path; a background
// persister would attribute its bookkeeping to whatever pin happened to be
// running.
func TestHotPathAllocationsBuffered(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the measured paths")
	}
	pool := pmem.New(pmem.Config{Mode: pmem.Direct, RegionWords: 1 << 16, Regions: 3})
	db := Open(pool, Options{Threads: 1, Buffered: true, PersistEvery: -1})
	s := db.Session(0)
	key := []byte("alloc-key")
	val := make([]byte, 1024)
	for i := range val {
		val[i] = byte(i)
	}
	// Warm to steady state: retained engine scratch (log chunks, dirty
	// lists, aggregation maps) and one full persist cycle per replica so
	// the watcher-free Persist path is also warm.
	for i := 0; i < 300; i++ {
		s.Put(key, val)
		if i%8 == 0 {
			db.Persist()
		}
	}
	db.Persist()

	dst := make([]byte, 0, 2048)
	if a := testing.AllocsPerRun(200, func() {
		dst, _ = s.GetAppend(dst[:0], key)
	}); a != 0 {
		t.Errorf("GetAppend with capacity: %.1f allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		s.Has(key)
	}); a != 0 {
		t.Errorf("Has: %.1f allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		s.Get(key)
	}); a > 1 {
		t.Errorf("Get: %.1f allocs/op, want <= 1", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		s.Put(key, val)
	}); a > 2 {
		t.Errorf("Put: %.1f allocs/op, want <= 2", a)
	}
	// The group-commit hot loop: commit + seal. The seal itself (dirty
	// dedup, flush, fence, header publish, no waiting watchers) must not
	// allocate beyond Put's own budget.
	if a := testing.AllocsPerRun(200, func() {
		s.Put(key, val)
		db.Persist()
	}); a > 2 {
		t.Errorf("Put+Persist: %.1f allocs/op, want <= 2 (Persist must be allocation-free)", a)
	}
	// Sync on an already-durable epoch is the fast path out of every
	// PutDurable pair: a pair of atomic loads, no allocations.
	if a := testing.AllocsPerRun(200, func() {
		s.Sync()
	}); a != 0 {
		t.Errorf("Sync (durable): %.1f allocs/op, want 0", a)
	}
}

func BenchmarkSessionPut(b *testing.B) {
	s := allocTestSession()
	key := []byte("alloc-key")
	val := make([]byte, 1024)
	s.Put(key, val)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(key, val)
	}
}

func BenchmarkSessionGetAppend(b *testing.B) {
	s := allocTestSession()
	key := []byte("alloc-key")
	s.Put(key, make([]byte, 1024))
	dst := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = s.GetAppend(dst[:0], key)
	}
}
