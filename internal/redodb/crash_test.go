package redodb

import (
	"fmt"
	"testing"

	"repro/internal/pmem"
)

// TestWriteBatchCrashAtomicity sweeps power failures across batched writes:
// after recovery each batch must be fully applied or fully absent — the
// LevelDB WriteBatch contract under durability.
func TestWriteBatchCrashAtomicity(t *testing.T) {
	const batches = 10
	const perBatch = 4
	for fail := int64(20); ; fail += 83 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 16, Regions: 2})
		completed := 0
		crashed := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrSimulatedPowerFailure {
						panic(r)
					}
					crashed = true
				}
				pool.InjectFailure(-1)
			}()
			db := Open(pool, Options{Threads: 1})
			s := db.Session(0)
			pool.InjectFailure(fail)
			for b := 0; b < batches; b++ {
				batch := &WriteBatch{}
				for i := 0; i < perBatch; i++ {
					batch.Put(
						[]byte(fmt.Sprintf("b%02d-k%d", b, i)),
						[]byte(fmt.Sprintf("v%d", b)),
					)
				}
				s.Write(batch)
				completed++
			}
		}()
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		db := Open(pool, Options{Threads: 1})
		s := db.Session(0)
		for b := 0; b < batches; b++ {
			present := 0
			for i := 0; i < perBatch; i++ {
				if _, ok := s.Get([]byte(fmt.Sprintf("b%02d-k%d", b, i))); ok {
					present++
				}
			}
			if present != 0 && present != perBatch {
				t.Fatalf("fail=%d: batch %d recovered partially (%d/%d keys)",
					fail, b, present, perBatch)
			}
			if b < completed && present != perBatch {
				t.Fatalf("fail=%d: completed batch %d lost", fail, b)
			}
		}
	}
}

// TestOverwriteCrashNeverTearsValue sweeps power failures across value
// overwrites of growing sizes: a recovered value must always be one of the
// values fully written, never a mix.
func TestOverwriteCrashNeverTearsValue(t *testing.T) {
	mkVal := func(gen int) []byte {
		v := make([]byte, 40+gen*7)
		for i := range v {
			v[i] = byte(gen)
		}
		return v
	}
	validate := func(v []byte) bool {
		if len(v) == 0 {
			return false
		}
		gen := int(v[0])
		if len(v) != 40+gen*7 {
			return false
		}
		for _, b := range v {
			if b != byte(gen) {
				return false
			}
		}
		return true
	}
	for fail := int64(10); ; fail += 127 {
		pool := pmem.New(pmem.Config{Mode: pmem.Strict, RegionWords: 1 << 15, Regions: 2})
		crashed := false
		completed := 0
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrSimulatedPowerFailure {
						panic(r)
					}
					crashed = true
				}
				pool.InjectFailure(-1)
			}()
			db := Open(pool, Options{Threads: 1})
			s := db.Session(0)
			s.Put([]byte("the-key"), mkVal(0))
			pool.InjectFailure(fail)
			for gen := 1; gen <= 8; gen++ {
				s.Put([]byte("the-key"), mkVal(gen))
				completed = gen
			}
		}()
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashConservative, nil)
		db := Open(pool, Options{Threads: 1})
		v, ok := db.Session(0).Get([]byte("the-key"))
		if !ok {
			t.Fatalf("fail=%d: key disappeared", fail)
		}
		if !validate(v) {
			t.Fatalf("fail=%d: torn value (len %d, first byte %d)", fail, len(v), v[0])
		}
		if int(v[0]) < completed {
			t.Fatalf("fail=%d: completed overwrite gen %d lost (found gen %d)",
				fail, completed, v[0])
		}
	}
}
