// Package redodb implements RedoDB, the paper's wait-free in-memory
// key-value store with durable linearizable transactions (§6): a resizable
// persistent hash map annotated with the transactional semantics of
// RedoOpt-PTM, extended with iterator capabilities, offering a
// LevelDB/RocksDB-style API (Put/Get/Delete/WriteBatch/Iterator).
//
// Every operation is a durable linearizable transaction with bounded
// wait-free progress, and the store has null recovery: reopening a pool
// after a crash adopts the last persisted state immediately ("the first
// persistent key-value store with bounded wait-free progress").
package redodb

import (
	"time"

	"repro/internal/core/redo"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/palloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Hash map layout.
//
// Header block: [bucketsAddr, nbuckets, count].
// Bucket array: nbuckets chain heads.
// Node block: [hash, keyAddr, valAddr, next].
const (
	hdrBuckets = 0
	hdrNB      = 1
	hdrCount   = 2

	ndHash = 0
	ndKey  = 1
	ndVal  = 2
	ndNext = 3

	minBuckets = 64
)

// Options parameterizes Open.
type Options struct {
	// Threads is the number of concurrent sessions (thread ids).
	Threads int
	// RootSlot is the persistent root slot holding the map (default 0).
	RootSlot int
	// DetectRootSlot is the persistent root slot holding the request-dedup
	// table behind the detectable-operation API (default 2; slot 1 is the
	// sharded front-end's batch tag). It must differ from RootSlot.
	DetectRootSlot int
	// Variant selects the underlying construction (default RedoOpt-PTM,
	// as in the paper).
	Variant redo.Variant
	// RingSize forwards to the engine (default 128).
	RingSize int
	// Features, when non-nil, overrides the Variant's optimization preset
	// (ablation studies — e.g. the bulk-store vs word-store comparison).
	Features *redo.Features
	// Profile, when non-nil, accumulates the engine's phase breakdown.
	Profile *ptm.Profile
	// Buffered selects relaxed durability (group commit): operations
	// commit into an in-flight epoch and become durable when the
	// persister advances the watermark — see buffered.go. Requires a
	// pool with at least 3 regions (Threads+2 recommended).
	Buffered bool
	// PersistEvery sets the background persister cadence in buffered
	// mode: 0 means the 200µs default, negative disables the goroutine
	// entirely (caller-driven: Sync/Persist seal epochs on the calling
	// thread — deterministic, for crash sweeps and alloc pins).
	PersistEvery time.Duration
	// LegacyAlloc formats fresh heaps with the legacy power-of-two
	// allocator — the Fig-8 space baseline with its 2× rounding waste,
	// 4–6 logged stores per Alloc and leak-on-crash behavior — instead of
	// the arena allocator. Reopening follows the on-media format.
	LegacyAlloc bool
}

// DB is a RedoDB instance.
type DB struct {
	eng    *redo.Redo
	pool   *pmem.Pool
	root   uint64
	detect detect.Table
	buf    *buffered // nil in synchronous mode
}

// Open creates or recovers a RedoDB over pool. The pool should have
// Threads+1 regions (the engine's replica bound). Defaults: RedoOpt-PTM.
func Open(pool *pmem.Pool, opts Options) *DB {
	if opts.Threads <= 0 {
		opts.Threads = 1
	}
	if opts.Variant == 0 {
		opts.Variant = redo.Opt
	}
	if opts.DetectRootSlot == 0 {
		opts.DetectRootSlot = 2
	}
	if opts.DetectRootSlot == opts.RootSlot {
		panic("redodb: DetectRootSlot must differ from RootSlot")
	}
	pool.TraceEvent(obs.KindRecoveryBegin, -1, -1, 0, 0, 0)
	eng := redo.New(pool, redo.Config{
		Threads:     opts.Threads,
		RingSize:    opts.RingSize,
		Variant:     opts.Variant,
		Features:    opts.Features,
		Profile:     opts.Profile,
		Buffered:    opts.Buffered,
		LegacyAlloc: opts.LegacyAlloc,
	})
	db := &DB{
		eng:    eng,
		pool:   pool,
		root:   ptm.RootAddr(opts.RootSlot),
		detect: detect.Table{RootSlot: opts.DetectRootSlot},
	}
	if opts.Buffered {
		db.buf = &buffered{kick: make(chan struct{}, 1)}
		if opts.PersistEvery >= 0 {
			every := opts.PersistEvery
			if every == 0 {
				every = defaultPersistEvery
			}
			db.buf.stop = make(chan struct{})
			db.buf.done = make(chan struct{})
			go db.persistLoop(every)
		}
	}
	// Reject a structurally-corrupt recovered map with a typed error before
	// running any transaction that would chase its pointers.
	db.validate()
	// Reachability pass over the arena heap: reclaim blocks a crash
	// stranded between allocation and publication (no-op on a clean heap
	// and on the legacy format, which has no directory to rebuild).
	db.recoverHeap()
	pool.TraceEvent(obs.KindRecoveryEnd, -1, -1, 0, 0, 0)
	// Initialize the map on first open; a recovered pool already holds it.
	db.eng.Update(0, func(m ptm.Mem) uint64 {
		if m.Load(db.root) != 0 {
			return 0
		}
		hdr := m.Alloc(3)
		buckets := m.Alloc(minBuckets)
		if hdr == 0 || buckets == 0 {
			panic("redodb: pool too small for an empty database")
		}
		ptm.ZeroWords(m, buckets, minBuckets)
		m.Store(hdr+hdrBuckets, buckets)
		m.Store(hdr+hdrNB, minBuckets)
		m.Store(hdr+hdrCount, 0)
		m.Store(db.root, hdr)
		return 0
	})
	return db
}

// Engine exposes the underlying construction (for stats and ablations).
func (db *DB) Engine() *redo.Redo { return db.eng }

// Session returns a handle bound to thread id tid (0..Threads-1). Each
// session must be used by at most one goroutine at a time.
func (db *DB) Session(tid int) *Session {
	if tid < 0 || tid >= db.eng.MaxThreads() {
		panic("redodb: session id out of range")
	}
	s := &Session{db: db, tid: tid}
	// Bind the optimistic-read closures once: TryRead runs them only on
	// this session's goroutine, so they may read the scratch fields below
	// without the cloning that announced closures require, and reusing the
	// bound method values keeps the read hot path allocation-free.
	s.getFn = s.getRead
	s.hasFn = s.hasRead
	return s
}

// NVMUsedBytes reports the persistent-heap bytes in use (Fig. 8's NVMM
// usage, including the power-of-two rounding waste of the allocator).
func (db *DB) NVMUsedBytes() uint64 {
	words := db.eng.Read(0, func(m ptm.Mem) uint64 {
		return palloc.InUseWords(memShim{m})
	})
	return words * 8
}

// NVMTotalBytes sums the used heap bytes across every replica region that
// holds data — the paper's Fig. 8 NVMM metric, where RedoDB pays for its
// multiple replicas (in practice only the first two under the timed
// funnel) plus the allocator's power-of-two rounding waste.
func (db *DB) NVMTotalBytes() uint64 {
	var total uint64
	for i := 0; i < db.pool.Regions(); i++ {
		m := regionMem{db.pool.Region(i)}
		if palloc.IsFormatted(m) {
			total += palloc.InUseWords(m) * 8
		}
	}
	return total
}

// regionMem adapts a raw region to palloc.Mem for quiesced metadata reads.
type regionMem struct{ r *pmem.Region }

func (s regionMem) Load(addr uint64) uint64 { return s.r.Load(addr) }
func (s regionMem) Store(addr, val uint64)  { s.r.Store(addr, val) }

// memShim adapts ptm.Mem to palloc.Mem for metadata reads.
type memShim struct{ m ptm.Mem }

func (s memShim) Load(addr uint64) uint64 { return s.m.Load(addr) }
func (s memShim) Store(addr, val uint64)  { s.m.Store(addr, val) }

// hashKey is FNV-1a, with the result forced non-zero so 0 can mean "empty".
func hashKey(k []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range k {
		h ^= uint64(b)
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// findNode returns the node holding key (0 if absent) and its predecessor
// (0 if the node is the chain head).
func findNode(m ptm.Mem, root uint64, key []byte, h uint64) (node, prev, slot uint64) {
	hdr := m.Load(root)
	nb := m.Load(hdr + hdrNB)
	slot = m.Load(hdr+hdrBuckets) + (h & (nb - 1))
	n := m.Load(slot)
	for n != 0 {
		if m.Load(n+ndHash) == h && ptm.BytesEqual(m, m.Load(n+ndKey), key) {
			return n, prev, slot
		}
		prev = n
		n = m.Load(n + ndNext)
	}
	return 0, 0, slot
}

// putLocked inserts or overwrites key inside an update transaction.
// Returns 1 if a new key was inserted, 0 on overwrite.
func putLocked(m ptm.Mem, root uint64, key, val []byte) uint64 {
	h := hashKey(key)
	node, _, slot := findNode(m, root, key, h)
	if node != 0 {
		old := m.Load(node + ndVal)
		va := ptm.AllocBytes(m, val)
		if va == 0 {
			panic("redodb: persistent heap exhausted")
		}
		m.Store(node+ndVal, va)
		m.Free(old)
		return 0
	}
	ka := ptm.AllocBytes(m, key)
	va := ptm.AllocBytes(m, val)
	nd := m.Alloc(4)
	if ka == 0 || va == 0 || nd == 0 {
		panic("redodb: persistent heap exhausted")
	}
	m.Store(nd+ndHash, h)
	m.Store(nd+ndKey, ka)
	m.Store(nd+ndVal, va)
	m.Store(nd+ndNext, m.Load(slot))
	m.Store(slot, nd)
	hdr := m.Load(root)
	count := m.Load(hdr+hdrCount) + 1
	m.Store(hdr+hdrCount, count)
	if count > m.Load(hdr+hdrNB) {
		growLocked(m, root)
	}
	return 1
}

// deleteLocked removes key; returns 1 if it was present.
func deleteLocked(m ptm.Mem, root uint64, key []byte) uint64 {
	h := hashKey(key)
	node, prev, slot := findNode(m, root, key, h)
	if node == 0 {
		return 0
	}
	if prev == 0 {
		m.Store(slot, m.Load(node+ndNext))
	} else {
		m.Store(prev+ndNext, m.Load(node+ndNext))
	}
	m.Free(m.Load(node + ndKey))
	m.Free(m.Load(node + ndVal))
	m.Free(node)
	hdr := m.Load(root)
	m.Store(hdr+hdrCount, m.Load(hdr+hdrCount)-1)
	return 1
}

// growLocked doubles the bucket array and rehashes, inside the caller's
// transaction (atomic and durable like any other update).
func growLocked(m ptm.Mem, root uint64) {
	hdr := m.Load(root)
	oldB := m.Load(hdr + hdrBuckets)
	oldNB := m.Load(hdr + hdrNB)
	newNB := oldNB * 2
	newB := m.Alloc(newNB)
	if newB == 0 {
		return // growing is optional; stay at the current size
	}
	ptm.ZeroWords(m, newB, newNB)
	for i := uint64(0); i < oldNB; i++ {
		n := m.Load(oldB + i)
		for n != 0 {
			next := m.Load(n + ndNext)
			s := newB + (m.Load(n+ndHash) & (newNB - 1))
			m.Store(n+ndNext, m.Load(s))
			m.Store(s, n)
			n = next
		}
	}
	m.Store(hdr+hdrBuckets, newB)
	m.Store(hdr+hdrNB, newNB)
	m.Free(oldB)
}
