// Package repro's root benchmarks map one testing.B target to every table
// and figure of the paper's evaluation. They run at laptop scale; the full
// parameter sweeps (thread counts, paper-sized structures, 20-second data
// points) are produced by cmd/ptmbench and cmd/dbbench.
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/seqds"
)

// engines returns the comparison set used by the paper's figures.
func engines() []bench.Engine { return bench.AllEngines() }

// BenchmarkFig4SPS measures one SPS update transaction (Fig. 4): `swaps`
// random pair exchanges in a persistent integer array.
func BenchmarkFig4SPS(b *testing.B) {
	const arraySize = 1 << 14
	for _, swaps := range []int{1, 8, 64} {
		for _, eng := range engines() {
			b.Run(fmt.Sprintf("%s/swaps=%d", eng.Name, swaps), func(b *testing.B) {
				p, pool := eng.New(1, 1<<16, pmem.LatencyModel{}, nil)
				sps := seqds.SPS{RootSlot: 0}
				p.Update(0, func(m ptm.Mem) uint64 { sps.InitEmpty(m, arraySize); return 0 })
				for lo := uint64(0); lo < arraySize; lo += 512 {
					lo := lo
					p.Update(0, func(m ptm.Mem) uint64 { sps.FillRange(m, lo, lo+512); return 0 })
				}
				r := newBenchRNG(1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pairs := make([][2]uint64, swaps)
					for k := range pairs {
						pairs[k] = [2]uint64{r.next() % arraySize, r.next() % arraySize}
					}
					p.Update(0, func(m ptm.Mem) uint64 {
						for _, pr := range pairs {
							sps.Swap(m, pr[0], pr[1])
						}
						return 0
					})
				}
				b.StopTimer()
				reportPM(b, pool, b.N)
			})
		}
	}
}

// BenchmarkFig5Queue measures an enqueue+dequeue transaction pair on the
// persistent queue (Fig. 5), pre-filled with 1,000 elements.
func BenchmarkFig5Queue(b *testing.B) {
	for _, eng := range engines() {
		b.Run(eng.Name, func(b *testing.B) {
			p, pool := eng.New(1, 1<<18, pmem.LatencyModel{}, nil)
			q := seqds.Queue{RootSlot: 0}
			p.Update(0, func(m ptm.Mem) uint64 { q.Init(m); return 0 })
			for i := 0; i < 1000; i += 100 {
				base := uint64(i)
				p.Update(0, func(m ptm.Mem) uint64 {
					for j := uint64(0); j < 100; j++ {
						q.Enqueue(m, base+j)
					}
					return 0
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Update(0, func(m ptm.Mem) uint64 { q.Enqueue(m, uint64(i)); return 0 })
				p.Update(0, func(m ptm.Mem) uint64 {
					v, _ := q.Dequeue(m)
					return v
				})
			}
			b.StopTimer()
			reportPM(b, pool, b.N)
		})
	}
}

// benchSet runs the Fig. 6 mixed workload (10% updates) on one structure.
func benchSet(b *testing.B, ds string, keys uint64) {
	for _, eng := range engines() {
		b.Run(eng.Name, func(b *testing.B) {
			s, err := bench.SetByName(ds)
			if err != nil {
				b.Fatal(err)
			}
			p, pool := eng.New(1, 1<<20, pmem.LatencyModel{}, nil)
			p.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
			for base := uint64(0); base < keys; base += 512 {
				lo, hi := base, base+512
				if hi > keys {
					hi = keys
				}
				p.Update(0, func(m ptm.Mem) uint64 {
					for k := lo; k < hi; k++ {
						s.Add(m, k)
					}
					return 0
				})
			}
			r := newBenchRNG(7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r.next()%100 < 10 { // 10% updates
					k := r.next() % keys
					if p.Update(0, func(m ptm.Mem) uint64 {
						if s.Remove(m, k) {
							return 1
						}
						return 0
					}) == 1 {
						p.Update(0, func(m ptm.Mem) uint64 { s.Add(m, k); return 0 })
					}
				} else {
					for n := 0; n < 2; n++ {
						k := r.next() % keys
						p.Read(0, func(m ptm.Mem) uint64 {
							if s.Contains(m, k) {
								return 1
							}
							return 0
						})
					}
				}
			}
			b.StopTimer()
			reportPM(b, pool, b.N)
		})
	}
}

// BenchmarkFig6List measures the ordered linked-list set (Fig. 6 top).
func BenchmarkFig6List(b *testing.B) { benchSet(b, "list", 1024) }

// BenchmarkFig6Tree measures the red-black tree set (Fig. 6 middle).
func BenchmarkFig6Tree(b *testing.B) { benchSet(b, "tree", 1<<13) }

// BenchmarkFig6Hash measures the resizable hash set (Fig. 6 bottom).
func BenchmarkFig6Hash(b *testing.B) { benchSet(b, "hash", 1<<13) }

// BenchmarkTable1Breakdown measures a 100%-update transaction on the hash
// set under concurrency, the workload whose time breakdown Table 1 reports;
// ns/op here corresponds to the table's updateTX column.
func BenchmarkTable1Breakdown(b *testing.B) {
	const keys = 1 << 12
	procs := runtime.GOMAXPROCS(0)
	for _, eng := range engines() {
		b.Run(eng.Name, func(b *testing.B) {
			s, _ := bench.SetByName("hash")
			p, pool := eng.New(procs, 1<<20, pmem.LatencyModel{}, nil)
			p.Update(0, func(m ptm.Mem) uint64 { s.Init(m); return 0 })
			for base := uint64(0); base < keys; base += 512 {
				base := base
				p.Update(0, func(m ptm.Mem) uint64 {
					for k := base; k < base+512; k++ {
						s.Add(m, k)
					}
					return 0
				})
			}
			var mu chanTid
			mu.init(procs)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				tid := mu.acquire()
				defer mu.release(tid)
				r := newBenchRNG(uint64(tid) + 99)
				for pb.Next() {
					k := r.next() % keys
					if p.Update(tid, func(m ptm.Mem) uint64 {
						if s.Remove(m, k) {
							return 1
						}
						return 0
					}) == 1 {
						p.Update(tid, func(m ptm.Mem) uint64 { s.Add(m, k); return 0 })
					}
				}
			})
			b.StopTimer()
			reportPM(b, pool, b.N)
		})
	}
}

// BenchmarkFig7ReadRandom measures random Gets (Fig. 7 left).
func BenchmarkFig7ReadRandom(b *testing.B) { benchKV(b, "readrandom") }

// BenchmarkFig7Overwrite measures random overwrites (Fig. 7 right).
func BenchmarkFig7Overwrite(b *testing.B) { benchKV(b, "overwrite") }

// BenchmarkFig9Fillrandom measures fillrandom Puts (Fig. 9).
func BenchmarkFig9Fillrandom(b *testing.B) { benchKV(b, "fillrandom") }

func benchKV(b *testing.B, workload string) {
	const keys = 1 << 13
	cfg := bench.DBConfig{Keys: keys, Words: 1 << 20}
	for _, mk := range []func() bench.KV{
		func() bench.KV { return bench.NewRocksKV(cfg) },
		func() bench.KV { return bench.NewRedoKV(cfg, 2) },
	} {
		kv := mk()
		b.Run(kv.Name(), func(b *testing.B) {
			val := make([]byte, 100)
			if workload != "fillrandom" {
				for i := uint64(0); i < keys; i++ {
					kv.Put(0, []byte(fmt.Sprintf("%016d", i)), val)
				}
			}
			r := newBenchRNG(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := []byte(fmt.Sprintf("%016d", r.next()%keys))
				if workload == "readrandom" {
					kv.Get(0, k)
				} else {
					kv.Put(0, k, val)
				}
			}
		})
	}
}

// BenchmarkFig8Recovery measures reopening a filled database and running
// the first transaction (Fig. 8 right: recovery time after a failure).
func BenchmarkFig8Recovery(b *testing.B) {
	const keys = 1 << 12
	cfg := bench.DBConfig{Keys: keys, Words: 1 << 19}
	kv := bench.NewRedoKV(cfg, 2)
	val := make([]byte, 100)
	for i := uint64(0); i < keys; i++ {
		kv.Put(0, []byte(fmt.Sprintf("%016d", i)), val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.ReopenRedo(kv)
	}
}

// reportPM attaches persistence-instruction metrics to a benchmark.
func reportPM(b *testing.B, pool *pmem.Pool, ops int) {
	if ops <= 0 {
		return
	}
	s := pool.Stats()
	b.ReportMetric(float64(s.PWBs)/float64(ops), "pwbs/op")
	b.ReportMetric(float64(s.Fences())/float64(ops), "fences/op")
}

// benchRNG is a tiny splitmix64.
type benchRNG struct{ s uint64 }

func newBenchRNG(seed uint64) *benchRNG { return &benchRNG{s: seed*0x9e3779b97f4a7c15 + 1} }

func (r *benchRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chanTid hands out distinct thread ids to RunParallel workers.
type chanTid struct{ ch chan int }

func (c *chanTid) init(n int) {
	c.ch = make(chan int, n)
	for i := 0; i < n; i++ {
		c.ch <- i
	}
}
func (c *chanTid) acquire() int    { return <-c.ch }
func (c *chanTid) release(tid int) { c.ch <- tid }
